"""repro.obs — zero-dependency tracing, metrics and logging.

The observability layer of the reproduction (DESIGN.md §6e):

* :mod:`repro.obs.core` — :class:`Span` context managers with monotonic
  timings and hierarchical nesting, and the process-wide
  :class:`Recorder` (a no-op unless enabled);
* :mod:`repro.obs.metrics` — thread-safe :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` registries, the single source of
  truth for every count the system reports (including the alias-cache
  statistics behind :meth:`AliasAnalysis.cache_stats`);
* :mod:`repro.obs.trace` — schema-pinned JSONL trace writer/validator
  (the ``--trace FILE.jsonl`` CLI flag);
* :mod:`repro.obs.history` — the benchmark run ledger
  (``BENCH_history.jsonl``): schema-pinned records of git sha, host
  fingerprint, per-phase wall seconds and counters, with its own
  validator CLI (DESIGN.md §6f);
* :mod:`repro.obs.regress` — noise-banded regression detection over
  ledger records (``repro bench compare`` / ``repro bench gate``);
* :mod:`repro.obs.promtext` — Prometheus text exposition of the registry
  (``BENCH_obs.prom``);
* :mod:`repro.obs.log` — leveled stderr logging behind the CLI's
  ``-q``/``-v``;
* :mod:`repro.obs.profile` — phase-tree and counter-table rendering for
  ``repro profile``.

Instrumented code imports the conveniences re-exported here::

    from repro import obs

    with obs.span("analysis.build", analysis=name):
        ...
    obs.registry().counter("alias.queries").inc()
"""

from repro.obs.core import (
    NULL_SPAN,
    NullSpan,
    Recorder,
    Span,
    disable,
    enable,
    enabled,
    recorder,
    reset,
    span,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)

__all__ = [
    "NULL_SPAN",
    "NullSpan",
    "Recorder",
    "Span",
    "span",
    "enable",
    "disable",
    "enabled",
    "recorder",
    "reset",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
]
