"""Benchmark run ledger: ``BENCH_history.jsonl`` records and validator.

``BENCH_alias.json`` is overwritten in place by every ``make
bench-quick`` run, so on its own no run is comparable to any previous
run.  The ledger fixes that: every ``repro bench`` / ``make bench-quick``
run *appends* one schema-versioned JSON record per line to
``BENCH_history.jsonl``, and the record carries everything a later
comparison needs:

* ``git_sha`` and a UTC timestamp, so records map onto commits;
* a host fingerprint (CPU count, python version, platform), so
  cross-host comparisons can be recognised and discounted;
* per-benchmark per-phase wall seconds lifted from the obs span tree
  (:func:`phase_seconds` buckets every recorded span under the nearest
  ancestor's ``program`` attribute);
* the counter/gauge registry snapshot flattened to ``name{labels}``
  keys, so behavioural drift (query counts, cache hits, limit-study
  category tallies) is tracked next to wall time.

The schema is pinned the same way the trace schema is: ``python -m
repro.obs.history FILE...`` validates every record (mirroring ``python
-m repro.obs.trace``), and any layout change must bump
:data:`HISTORY_SCHEMA_VERSION`.  :mod:`repro.obs.regress` consumes these
records for ``repro bench compare`` / ``repro bench gate``.
"""

import json
import os
import platform
import subprocess
import sys
import time
from typing import Dict, List, Optional

from repro.obs import core, metrics

#: Bumped whenever the record layout changes.
HISTORY_SCHEMA_VERSION = 1

#: Where the CLI appends records by default (repository root relative).
DEFAULT_HISTORY_PATH = "BENCH_history.jsonl"

#: The only record kind this schema version defines.
RECORD_KIND = "bench_run"

#: Bucket for spans that have no ``program`` attribute anywhere on their
#: ancestor chain (suite-wide work such as the Table 5 engine sweep).
SUITE_BUCKET = "(suite)"

#: Keys every record must carry (the validator and tests check these).
REQUIRED_KEYS = ("schema", "kind", "tool", "label", "git_sha",
                 "timestamp_utc", "host", "phases", "counters")

#: Keys every host fingerprint must carry.
HOST_KEYS = ("python", "platform", "machine", "cpu_count")


# ----------------------------------------------------------------------
# Record collection


def host_fingerprint() -> Dict[str, object]:
    """CPU count, python version and platform of the measuring host."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The HEAD commit sha, or ``None`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            cwd=cwd, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.decode("ascii", "replace").strip()
    return sha or None


def resolve_ref(ref: str, cwd: Optional[str] = None) -> Optional[str]:
    """Resolve a git ref (``HEAD~1``, a branch, a short sha) to a sha."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--verify", ref],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            cwd=cwd, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.decode("ascii", "replace").strip()
    return sha or None


def utc_timestamp() -> str:
    """Current UTC time as ``YYYY-MM-DDTHH:MM:SSZ``."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def phase_seconds(recorder: Optional[core.Recorder] = None
                  ) -> Dict[str, Dict[str, float]]:
    """``benchmark -> span name -> summed wall seconds`` from the span tree.

    A span's benchmark is its own ``program`` attribute if set, else the
    nearest ancestor's; spans with no attributed ancestor land under
    :data:`SUITE_BUCKET`.  Repeated spans of the same (benchmark, name)
    sum, so e.g. the base and optimized ``bench.run`` of one benchmark
    form a single series.
    """
    recorder = recorder or core.recorder()
    spans = recorder.spans()
    by_id = {s.span_id: s for s in spans}
    attributed: Dict[int, str] = {}

    def bucket_of(span: core.Span) -> str:
        cached = attributed.get(span.span_id)
        if cached is not None:
            return cached
        program = span.attrs.get("program")
        if program is not None:
            bucket = str(program)
        elif span.parent_id in by_id:
            bucket = bucket_of(by_id[span.parent_id])
        else:
            bucket = SUITE_BUCKET
        attributed[span.span_id] = bucket
        return bucket

    sums: Dict[str, Dict[str, float]] = {}
    for span in spans:
        phases = sums.setdefault(bucket_of(span), {})
        phases[span.name] = phases.get(span.name, 0.0) + span.duration
    return {
        bucket: {name: round(seconds, 6) for name, seconds in phases.items()}
        for bucket, phases in sums.items()
    }


def counter_values(registry: Optional[metrics.MetricsRegistry] = None
                   ) -> Dict[str, float]:
    """Registry counters/gauges flattened to ``name{k=v,...} -> value``.

    Histograms contribute their event count under a ``:count`` suffix.
    """
    registry = registry if registry is not None else metrics.registry()
    out: Dict[str, float] = {}
    for entry in registry.snapshot():
        labels = ",".join(
            "{}={}".format(k, v) for k, v in sorted(entry["labels"].items()))
        key = entry["name"] + ("{" + labels + "}" if labels else "")
        if entry["kind"] == "histogram":
            out[key + ":count"] = entry["count"]
        else:
            out[key] = entry["value"]
    return out


def _merge_phases(base: Dict[str, Dict[str, float]],
                  extra: Dict[str, Dict[str, float]]) -> None:
    for bucket, phases in extra.items():
        target = base.setdefault(bucket, {})
        for name, seconds in phases.items():
            target[name] = round(target.get(name, 0.0) + seconds, 6)


def collect_record(label: str,
                   recorder: Optional[core.Recorder] = None,
                   registry: Optional[metrics.MetricsRegistry] = None,
                   sha: Optional[str] = None,
                   timestamp: Optional[str] = None,
                   extra_phases: Optional[Dict[str, Dict[str, float]]] = None,
                   ) -> dict:
    """One ledger record from the current recorder/registry state.

    ``label`` names the producing workflow (``bench``, ``bench-quick``,
    ``gate``); ``extra_phases`` merges additional series (the quick-bench
    report's own numbers) into the span-derived phases.
    """
    phases = phase_seconds(recorder)
    if extra_phases:
        _merge_phases(phases, extra_phases)
    return {
        "schema": HISTORY_SCHEMA_VERSION,
        "kind": RECORD_KIND,
        "tool": "repro",
        "label": label,
        "git_sha": sha if sha is not None else git_sha(),
        "timestamp_utc": timestamp or utc_timestamp(),
        "host": host_fingerprint(),
        "phases": phases,
        "counters": counter_values(registry),
    }


# ----------------------------------------------------------------------
# File I/O


def append_record(path: str, record: dict) -> None:
    """Validate *record* and append it as one JSONL line.

    The ``history.append`` chaos point simulates a torn append (the
    process dying mid-write): the line is truncated to a prefix, which
    readers must skip — see :func:`read_history`.
    """
    from repro.qa import chaos  # lazy: qa pulls in heavier modules

    validate_record(record)
    line = json.dumps(record, sort_keys=True)
    if chaos.fire("history.append", label=record.get("label", "?")):
        line = line[: max(1, len(line) // 3)]
        metrics.registry().counter("obs.history.torn_writes").inc()
    with open(path, "a") as f:
        f.write(line + "\n")


def read_history(path: str, skip_torn: bool = True) -> List[dict]:
    """Every validated record in *path*, in file (i.e. append) order.

    A **torn line** — one that fails to decode as JSON, the artifact of
    a writer dying mid-append — is skipped with a warning (and counted
    in ``obs.history.torn_skipped``) so a crashed bench run can never
    wedge ``bench compare``/``gate``; pass ``skip_torn=False`` to get
    the old strict behaviour.  A line that decodes but fails
    :func:`validate_record` is *corruption*, not tearing, and still
    raises.  A file with no valid record at all still raises.
    """
    from repro.obs import log

    records: List[dict] = []
    with open(path) as f:
        for lineno, raw in enumerate(f, 1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError as err:
                if not skip_torn:
                    raise ValueError(
                        "{}:{}: not JSON: {}".format(path, lineno, err))
                metrics.registry().counter("obs.history.torn_skipped").inc()
                log.warn("{}:{}: skipping torn ledger line (not JSON: {})"
                         .format(path, lineno, err))
                continue
            try:
                validate_record(obj)
            except ValueError as err:
                raise ValueError("{}:{}: {}".format(path, lineno, err))
            records.append(obj)
    if not records:
        raise ValueError("{}: empty history".format(path))
    return records


# ----------------------------------------------------------------------
# Validation


def validate_record(obj: object) -> None:
    """Raise ``ValueError`` unless *obj* is a well-formed ledger record."""
    if not isinstance(obj, dict):
        raise ValueError("history record is not an object: {!r}".format(obj))
    for key in REQUIRED_KEYS:
        if key not in obj:
            raise ValueError("record missing key {!r}".format(key))
    if obj["schema"] != HISTORY_SCHEMA_VERSION:
        raise ValueError(
            "unknown schema version: {!r}".format(obj["schema"]))
    if obj["kind"] != RECORD_KIND:
        raise ValueError("unknown record kind: {!r}".format(obj["kind"]))
    if not isinstance(obj["label"], str) or not obj["label"]:
        raise ValueError("label must be a non-empty string")
    sha = obj["git_sha"]
    if sha is not None and (not isinstance(sha, str) or not sha):
        raise ValueError("git_sha must be a non-empty string or null")
    stamp = obj["timestamp_utc"]
    if not isinstance(stamp, str) or "T" not in stamp:
        raise ValueError("timestamp_utc must be an ISO 8601 string")
    host = obj["host"]
    if not isinstance(host, dict):
        raise ValueError("host must be an object")
    for key in HOST_KEYS:
        if key not in host:
            raise ValueError("host fingerprint missing key {!r}".format(key))
    if not isinstance(host["cpu_count"], int) or host["cpu_count"] < 1:
        raise ValueError("host cpu_count must be a positive integer")
    phases = obj["phases"]
    if not isinstance(phases, dict):
        raise ValueError("phases must be an object")
    for bucket, series in phases.items():
        if not isinstance(series, dict):
            raise ValueError(
                "phases[{!r}] must be an object".format(bucket))
        for name, seconds in series.items():
            if not isinstance(seconds, (int, float)) or seconds < 0:
                raise ValueError(
                    "phase {}/{} must be a non-negative number, got {!r}"
                    .format(bucket, name, seconds))
    counters = obj["counters"]
    if not isinstance(counters, dict):
        raise ValueError("counters must be an object")
    for name, value in counters.items():
        if not isinstance(value, (int, float)):
            raise ValueError(
                "counter {!r} must be numeric, got {!r}".format(name, value))


def validate_file(path: str) -> int:
    """Validate the JSONL ledger at *path*; returns the record count."""
    return len(read_history(path))


# ----------------------------------------------------------------------
# Record selection (for compare/gate)


def select_records(records: List[dict], selector: str) -> List[dict]:
    """The records *selector* names, from already-loaded history.

    * ``latest`` — the trailing run of consecutive records sharing the
      newest record's ``git_sha`` (i.e. "everything from the last
      measured commit", which is what repeats produce);
    * anything else — records whose ``git_sha`` starts with *selector*.
    """
    if not records:
        raise ValueError("history holds no records")
    if selector in ("latest", "last"):
        tail_sha = records[-1]["git_sha"]
        chosen: List[dict] = []
        for record in reversed(records):
            if record["git_sha"] != tail_sha:
                break
            chosen.append(record)
        return list(reversed(chosen))
    chosen = [r for r in records
              if r["git_sha"] is not None and r["git_sha"].startswith(selector)]
    if not chosen:
        raise ValueError(
            "no history records match {!r} (known shas: {})".format(
                selector,
                ", ".join(sorted({str(r["git_sha"])[:12]
                                  for r in records})) or "none"))
    return chosen


def resolve_selection(selector: str, history_path: str) -> List[dict]:
    """Turn a CLI selector into a list of ledger records.

    *selector* is, in order of precedence: a path to a JSONL ledger file
    (all its records), ``latest``, a git-sha prefix found in the history
    file, or a git ref resolved via ``git rev-parse``.
    """
    if os.path.isfile(selector):
        return read_history(selector)
    records = read_history(history_path)
    try:
        return select_records(records, selector)
    except ValueError:
        sha = resolve_ref(selector)
        if sha is None:
            raise
        return select_records(records, sha)


# ----------------------------------------------------------------------
# Validator CLI (mirrors ``python -m repro.obs.trace``)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.history FILE...`` — validate ledger files."""
    import argparse

    parser = argparse.ArgumentParser(
        description="validate repro benchmark-history JSONL files "
        "against the pinned schema")
    parser.add_argument("files", nargs="+")
    args = parser.parse_args(argv)
    status = 0
    for path in args.files:
        try:
            count = validate_file(path)
        except (OSError, ValueError) as err:
            print("{}: INVALID: {}".format(path, err), file=sys.stderr)
            status = 1
        else:
            print("{}: ok ({} records, schema {})".format(
                path, count, HISTORY_SCHEMA_VERSION))
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
