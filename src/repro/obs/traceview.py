"""Stitch trace records from many processes into one tree, and report.

A trace that crossed process boundaries lands in the
:class:`~repro.obs.tracestore.TraceStore` as several records — one per
process/operation — each carrying its own span list (span ids are
process-local) and, except for the origin record, a remote
``(proc, span)`` parent.  :func:`merge_trace` keys every span globally
as ``(proc, span_id)`` and reattaches each record's root spans under
their remote parent, producing the single parent-linked tree the
``repro trace show`` renderer walks: client span → daemon request span
→ forked corpus-worker span, process boundaries annotated.

A parent may legitimately be missing — its record evicted, torn, or
simply not flushed yet — so orphaned subtrees surface as extra roots
marked ``(detached)`` rather than vanishing: a partial trace that
renders is worth more than a perfect trace that raises.

:func:`rollup` is the flamegraph-style aggregate behind ``repro trace
top``: total/self milliseconds per span name (``--by phase``) or per
record op (``--by op``) across every stored trace.
"""

from typing import Dict, List, Optional, Tuple

from repro.util.tables import render_table

__all__ = ["TraceNode", "merge_trace", "render_trace", "rollup",
           "summarize_traces"]

#: Global span key: the process token plus the process-local span id.
NodeKey = Tuple[str, int]


class TraceNode:
    """One span in the merged cross-process tree."""

    __slots__ = ("key", "name", "ms", "proc", "origin", "error",
                 "attrs", "children", "detached")

    def __init__(self, key: NodeKey, name: str, ms: float, proc: str,
                 origin: str, error: Optional[str], attrs: dict):
        self.key = key
        self.name = name
        self.ms = ms
        self.proc = proc
        self.origin = origin
        self.error = error
        self.attrs = attrs
        self.children: List["TraceNode"] = []
        self.detached = False


def merge_trace(records: List[dict]) -> List[TraceNode]:
    """Merge one trace's records into root :class:`TraceNode` s.

    Returns the forest's roots in deterministic order (origin record
    first, then detached subtrees by key).  Records are assumed to
    belong to a single trace; callers group by trace id first.
    """
    nodes: Dict[NodeKey, TraceNode] = {}
    parents: Dict[NodeKey, Optional[NodeKey]] = {}
    for record in records:
        proc = record["proc"]
        origin = record["origin"]
        remote: Optional[NodeKey] = None
        if record.get("parent") is not None:
            remote = (record["parent"]["proc"], record["parent"]["span"])
        for span in record["spans"]:
            key = (proc, int(span["id"]))
            if key in nodes:
                continue  # duplicate flush: first write wins
            nodes[key] = TraceNode(
                key, span.get("name", "?"),
                float(span.get("duration_ms", 0.0)), proc, origin,
                span.get("error"), span.get("attrs") or {})
            if span.get("parent") is not None:
                parents[key] = (proc, int(span["parent"]))
            else:
                # A record-root span hangs under the remote parent the
                # producing scope carried (None for the origin record).
                parents[key] = remote
    roots: List[TraceNode] = []
    for key, node in nodes.items():
        parent_key = parents.get(key)
        parent = nodes.get(parent_key) if parent_key is not None else None
        if parent is None:
            node.detached = parent_key is not None
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.key)
    roots.sort(key=lambda n: (n.detached, n.key))
    return roots


def render_trace(trace_id: str, records: List[dict]) -> str:
    """The merged tree as indented text, process boundaries marked."""
    roots = merge_trace(records)
    procs = sorted({r["proc"] for r in records})
    origins = sorted({r["origin"] for r in records})
    lines = ["trace {}  ({} records, {} processes: {})".format(
        trace_id, len(records), len(procs), ", ".join(origins))]
    if not roots:
        lines.append("(no spans recorded)")
        return "\n".join(lines) + "\n"

    def walk(node: TraceNode, depth: int, parent: Optional[TraceNode]):
        indent = "  " * depth
        crossing = parent is not None and parent.proc != node.proc
        marks = []
        if crossing or parent is None:
            marks.append("proc={} {}".format(node.proc, node.origin))
        if node.detached:
            marks.append("(detached)")
        if node.error:
            marks.append("ERROR={}".format(node.error))
        mark_text = "  [{}]".format(", ".join(marks)) if marks else ""
        lines.append("{}{:<{}} {:>9.3f} ms{}".format(
            indent, node.name, max(1, 36 - len(indent)), node.ms,
            mark_text))
        for child in node.children:
            walk(child, depth + 1, node)

    for root in roots:
        walk(root, 0, None)
    return "\n".join(lines) + "\n"


def rollup(records: List[dict], by: str = "phase") -> List[List[object]]:
    """Aggregate rows across records: ``[key, count, total, self, share]``.

    ``by="phase"`` groups spans by name with **self** time (total minus
    direct in-process children — the flamegraph number); ``by="op"``
    groups whole records by their operation.
    """
    if by == "op":
        totals: Dict[str, List[float]] = {}
        for record in records:
            entry = totals.setdefault(record["op"], [0, 0.0])
            entry[0] += 1
            entry[1] += float(record["ms"])
        grand = sum(v[1] for v in totals.values()) or 1.0
        return [
            [op, int(count), round(total, 3), round(total, 3),
             "{:.1f}%".format(100.0 * total / grand)]
            for op, (count, total) in
            sorted(totals.items(), key=lambda kv: -kv[1][1])
        ]
    if by != "phase":
        raise ValueError("rollup 'by' must be 'phase' or 'op', got {!r}"
                         .format(by))
    total_ms: Dict[str, float] = {}
    self_ms: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for record in records:
        spans = record["spans"]
        child_ms: Dict[int, float] = {}
        for span in spans:
            if span.get("parent") is not None:
                child_ms[int(span["parent"])] = (
                    child_ms.get(int(span["parent"]), 0.0)
                    + float(span.get("duration_ms", 0.0)))
        for span in spans:
            name = span.get("name", "?")
            duration = float(span.get("duration_ms", 0.0))
            counts[name] = counts.get(name, 0) + 1
            total_ms[name] = total_ms.get(name, 0.0) + duration
            own = duration - child_ms.get(int(span["id"]), 0.0)
            self_ms[name] = self_ms.get(name, 0.0) + max(own, 0.0)
    grand = sum(self_ms.values()) or 1.0
    return [
        [name, counts[name], round(total_ms[name], 3),
         round(self_ms[name], 3),
         "{:.1f}%".format(100.0 * self_ms[name] / grand)]
        for name in sorted(self_ms, key=lambda n: -self_ms[n])
    ]


def render_rollup(records: List[dict], by: str = "phase") -> str:
    """The rollup as a table (``repro trace top``)."""
    rows = rollup(records, by=by)
    if not rows:
        return "(no trace records)\n"
    return render_table(
        [by, "count", "total ms", "self ms", "self share"], rows,
        title="trace rollup by {} over {} records".format(
            by, len(records)),
        align_left=(0, 4)) + "\n"


def summarize_traces(grouped: Dict[str, List[dict]]) -> List[dict]:
    """One summary row per trace (``repro trace ls`` / ``/v1/traces``).

    Newest first by record timestamp, so dashboards naturally show the
    live tail of the store.
    """
    summaries = []
    for trace_id, records in grouped.items():
        procs = sorted({r["proc"] for r in records})
        origins = sorted({r["origin"] for r in records})
        ops = sorted({r["op"] for r in records})
        summaries.append({
            "trace": trace_id,
            "records": len(records),
            "procs": len(procs),
            "origins": origins,
            "ops": ops,
            "ms": round(max(float(r["ms"]) for r in records), 3),
            "ok": all(r["ok"] for r in records),
            "ts": max(r["ts"] for r in records),
        })
    summaries.sort(key=lambda s: s["ts"], reverse=True)
    return summaries
