"""Phase spans and the process-wide recorder.

A :class:`Span` is a context manager around one phase of work (parse,
typecheck, lower, one analysis build, one benchmark run).  Spans nest:
each thread keeps a stack, so entering a span inside another records the
parent/child edge, and the finished record carries monotonic start and
duration taken from :func:`time.perf_counter`.

The process-wide :class:`Recorder` is **off by default** and free when
off: :func:`span` then returns one shared identity no-op object, so the
instrumented code paths cost a single predicate per phase (never per
query — per-query costs live in :mod:`repro.obs.metrics` counters).
``repro profile`` and the ``--trace`` CLI flag enable it.

**Request-scoped tracing** (DESIGN.md §6j) layers on top: a serving
daemon wraps each request in :func:`trace_scope`, which stamps every
span finished on that thread with the request's ``trace_id`` (emitted in
span JSON only when set, so batch traces are unchanged) and — when the
scope *collects* — captures the request's own spans into a bounded
per-request sink even while the global recorder stays disabled.  Scopes
are thread-local, exactly like span stacks, so concurrent requests can
never interleave trace ids.
"""

import itertools
import threading
import time
from typing import Dict, List, Optional

__all__ = ["Span", "NullSpan", "NULL_SPAN", "Recorder", "recorder",
           "span", "enable", "disable", "enabled", "reset",
           "trace_scope", "current_trace", "current_scope",
           "current_span_id", "reset_inherited_trace_state",
           "trace_note", "TraceScope"]


class NullSpan:
    """Shared do-nothing span used whenever the recorder is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        """Accept and drop attributes (mirrors :meth:`Span.annotate`)."""


#: The identity no-op: every disabled ``span()`` call returns this object.
NULL_SPAN = NullSpan()


#: Thread-local holder for the active :class:`TraceScope` (if any).
_TRACE = threading.local()


#: Collecting scopes stop capturing past this many spans per request —
#: a runaway span loop must not grow an unbounded debug payload.
TRACE_SINK_CAP = 512


class TraceScope:
    """One request's tracing context: id, notes and an optional sink.

    Entered around a request's whole lifetime on its serving thread.
    While active, every :class:`Span` finished on this thread carries
    ``trace_id``; with ``collect=True`` finished spans are also appended
    to :attr:`spans` (bounded by :data:`TRACE_SINK_CAP`) even when the
    global recorder is disabled, which is what powers ``debug: true``
    responses.  :attr:`notes` is a scratch dict lower layers fill in via
    :func:`trace_note` (e.g. the session cache outcome) and the daemon
    reads back when journalling the request.

    ``remote_parent`` carries cross-process parentage (DESIGN.md §6k):
    a ``(proc, span_id)`` pair naming the span — in *another* process —
    that this scope's root spans hang under.  The scope itself only
    stores it; :mod:`repro.obs.tracestore` stamps it onto the flushed
    trace record so the viewer can reattach the subtree.
    """

    __slots__ = ("trace_id", "collect", "spans", "notes", "dropped",
                 "remote_parent", "_previous")

    def __init__(self, trace_id: str, collect: bool = False,
                 remote_parent: Optional[tuple] = None):
        self.trace_id = trace_id
        self.collect = collect
        self.spans: List["Span"] = []
        self.notes: Dict[str, object] = {}
        self.dropped = 0
        self.remote_parent = remote_parent
        self._previous: Optional["TraceScope"] = None

    def __enter__(self) -> "TraceScope":
        self._previous = getattr(_TRACE, "scope", None)
        _TRACE.scope = self
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _TRACE.scope = self._previous
        self._previous = None
        return False

    def _capture(self, span: "Span") -> None:
        if len(self.spans) < TRACE_SINK_CAP:
            self.spans.append(span)
        else:
            self.dropped += 1

    def tree(self, epoch: Optional[float] = None) -> List[dict]:
        """Collected spans as JSON dicts (start order), for responses."""
        if epoch is None:
            epoch = self.spans[0].start if self.spans else 0.0
        return [s.to_json(epoch) for s in
                sorted(self.spans, key=lambda s: s.span_id or 0)]


def trace_scope(trace_id: str, collect: bool = False,
                remote_parent: Optional[tuple] = None) -> TraceScope:
    """A context manager scoping *trace_id* to the current thread."""
    return TraceScope(trace_id, collect=collect,
                      remote_parent=remote_parent)


def current_scope() -> Optional[TraceScope]:
    """The thread's active :class:`TraceScope`, or None."""
    return getattr(_TRACE, "scope", None)


def current_span_id() -> Optional[int]:
    """The innermost *open* span's id on this thread, or None.

    This is what cross-process propagation stamps as the parent: work
    handed to another process attaches under whatever span was live at
    the moment of the hand-off.
    """
    stack = getattr(RECORDER._local, "stack", None)
    if stack:
        return stack[-1].span_id
    return None


def reset_inherited_trace_state() -> None:
    """Fork hygiene: drop trace state inherited from the parent process.

    A forked worker inherits the parent's open span stack and active
    trace scope over ``fork``.  Both are bogus in the child — the open
    spans live (and will close) in the *parent*, so any span the worker
    opens would parent under an id that does not exist in its own
    process, detaching its subtree from the cross-process trace.
    Workers call this before opening their own scope.
    """
    RECORDER._local.stack = []
    _TRACE.scope = None


def current_trace() -> Optional[str]:
    """The thread's active trace id, or None outside any scope."""
    scope = getattr(_TRACE, "scope", None)
    return scope.trace_id if scope is not None else None


def trace_note(key: str, value: object) -> None:
    """Attach a note to the active trace scope (no-op outside one)."""
    scope = getattr(_TRACE, "scope", None)
    if scope is not None:
        scope.notes[key] = value


class Span:
    """One timed, named phase; records itself into its recorder on exit."""

    __slots__ = ("recorder", "name", "attrs", "span_id", "parent_id",
                 "depth", "start", "duration", "thread", "error",
                 "trace_id")

    def __init__(self, recorder: "Recorder", name: str, attrs: Dict[str, object]):
        self.recorder = recorder
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.start = 0.0
        self.duration = 0.0
        self.thread = ""
        self.error: Optional[str] = None
        self.trace_id: Optional[str] = None

    def __enter__(self) -> "Span":
        self.span_id = self.recorder._next_id()
        stack = self.recorder._stack()
        if stack:
            self.parent_id = stack[-1].span_id
            self.depth = len(stack)
        stack.append(self)
        scope = getattr(_TRACE, "scope", None)
        if scope is not None:
            self.trace_id = scope.trace_id
        self.thread = threading.current_thread().name
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        if exc_type is not None:
            self.error = exc_type.__name__
        stack = self.recorder._stack()
        # Defensive: only pop ourselves (mismatched exits must not corrupt
        # sibling bookkeeping).
        if stack and stack[-1] is self:
            stack.pop()
        # A span may exist only because a collecting trace scope asked
        # for it; the global recorder keeps it only while enabled.
        if self.recorder._enabled:
            self.recorder._record(self)
        scope = getattr(_TRACE, "scope", None)
        if scope is not None and scope.collect:
            scope._capture(self)
        return False

    def annotate(self, **attrs) -> None:
        """Attach extra attributes to a live span."""
        self.attrs.update(attrs)

    def to_json(self, epoch: float) -> dict:
        out = {
            "kind": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "start_ms": round((self.start - epoch) * 1000.0, 3),
            "duration_ms": round(self.duration * 1000.0, 6),
            "thread": self.thread,
            "attrs": {k: _jsonable(v) for k, v in self.attrs.items()},
            "error": self.error,
        }
        # Additive: only request-scoped spans carry a trace id, so the
        # batch trace schema (golden-pinned key set) is unchanged.
        if self.trace_id is not None:
            out["trace"] = self.trace_id
        return out

    def __repr__(self) -> str:
        return "<Span {} {:.3f}ms>".format(self.name, self.duration * 1000.0)


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class Recorder:
    """Collects finished spans; a no-op unless :meth:`enable`\\ d."""

    def __init__(self) -> None:
        self._enabled = False
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        self.epoch = time.perf_counter()

    # -- state ----------------------------------------------------------

    @property
    def is_enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop recorded spans and restart the clock epoch."""
        with self._lock:
            self._finished = []
            self._ids = itertools.count(1)
            self._local = threading.local()
            self.epoch = time.perf_counter()

    # -- recording ------------------------------------------------------

    def span(self, name: str, **attrs):
        """A context manager timing one phase (no-op when disabled)."""
        if not self._enabled and not _collecting():
            return NULL_SPAN
        return Span(self, name, attrs)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        return next(self._ids)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    # -- reading --------------------------------------------------------

    def spans(self) -> List[Span]:
        """Finished spans, in start order."""
        with self._lock:
            return sorted(self._finished, key=lambda s: s.span_id or 0)

    def roots(self) -> List[Span]:
        return [s for s in self.spans() if s.parent_id is None]

    def children_of(self) -> Dict[Optional[int], List[Span]]:
        """``parent_id -> [children in start order]`` for tree walks."""
        out: Dict[Optional[int], List[Span]] = {}
        for s in self.spans():
            out.setdefault(s.parent_id, []).append(s)
        return out


#: The process-wide recorder all instrumentation records into.
RECORDER = Recorder()


def recorder() -> Recorder:
    """The process-wide :class:`Recorder`."""
    return RECORDER


def _collecting() -> bool:
    """True when the thread's trace scope wants its own span copies."""
    scope = getattr(_TRACE, "scope", None)
    return scope is not None and scope.collect


def span(name: str, **attrs):
    """Module-level shorthand for ``recorder().span(...)``."""
    if not RECORDER._enabled and not _collecting():
        return NULL_SPAN
    return Span(RECORDER, name, attrs)


def enable() -> None:
    RECORDER.enable()


def disable() -> None:
    RECORDER.disable()


def enabled() -> bool:
    return RECORDER._enabled


def reset() -> None:
    RECORDER.reset()
