"""Phase spans and the process-wide recorder.

A :class:`Span` is a context manager around one phase of work (parse,
typecheck, lower, one analysis build, one benchmark run).  Spans nest:
each thread keeps a stack, so entering a span inside another records the
parent/child edge, and the finished record carries monotonic start and
duration taken from :func:`time.perf_counter`.

The process-wide :class:`Recorder` is **off by default** and free when
off: :func:`span` then returns one shared identity no-op object, so the
instrumented code paths cost a single predicate per phase (never per
query — per-query costs live in :mod:`repro.obs.metrics` counters).
``repro profile`` and the ``--trace`` CLI flag enable it.
"""

import itertools
import threading
import time
from typing import Dict, List, Optional

__all__ = ["Span", "NullSpan", "NULL_SPAN", "Recorder", "recorder",
           "span", "enable", "disable", "enabled", "reset"]


class NullSpan:
    """Shared do-nothing span used whenever the recorder is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        """Accept and drop attributes (mirrors :meth:`Span.annotate`)."""


#: The identity no-op: every disabled ``span()`` call returns this object.
NULL_SPAN = NullSpan()


class Span:
    """One timed, named phase; records itself into its recorder on exit."""

    __slots__ = ("recorder", "name", "attrs", "span_id", "parent_id",
                 "depth", "start", "duration", "thread", "error")

    def __init__(self, recorder: "Recorder", name: str, attrs: Dict[str, object]):
        self.recorder = recorder
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.start = 0.0
        self.duration = 0.0
        self.thread = ""
        self.error: Optional[str] = None

    def __enter__(self) -> "Span":
        self.span_id = self.recorder._next_id()
        stack = self.recorder._stack()
        if stack:
            self.parent_id = stack[-1].span_id
            self.depth = len(stack)
        stack.append(self)
        self.thread = threading.current_thread().name
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        if exc_type is not None:
            self.error = exc_type.__name__
        stack = self.recorder._stack()
        # Defensive: only pop ourselves (mismatched exits must not corrupt
        # sibling bookkeeping).
        if stack and stack[-1] is self:
            stack.pop()
        self.recorder._record(self)
        return False

    def annotate(self, **attrs) -> None:
        """Attach extra attributes to a live span."""
        self.attrs.update(attrs)

    def to_json(self, epoch: float) -> dict:
        return {
            "kind": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "start_ms": round((self.start - epoch) * 1000.0, 3),
            "duration_ms": round(self.duration * 1000.0, 6),
            "thread": self.thread,
            "attrs": {k: _jsonable(v) for k, v in self.attrs.items()},
            "error": self.error,
        }

    def __repr__(self) -> str:
        return "<Span {} {:.3f}ms>".format(self.name, self.duration * 1000.0)


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class Recorder:
    """Collects finished spans; a no-op unless :meth:`enable`\\ d."""

    def __init__(self) -> None:
        self._enabled = False
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        self.epoch = time.perf_counter()

    # -- state ----------------------------------------------------------

    @property
    def is_enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop recorded spans and restart the clock epoch."""
        with self._lock:
            self._finished = []
            self._ids = itertools.count(1)
            self._local = threading.local()
            self.epoch = time.perf_counter()

    # -- recording ------------------------------------------------------

    def span(self, name: str, **attrs):
        """A context manager timing one phase (no-op when disabled)."""
        if not self._enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        return next(self._ids)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    # -- reading --------------------------------------------------------

    def spans(self) -> List[Span]:
        """Finished spans, in start order."""
        with self._lock:
            return sorted(self._finished, key=lambda s: s.span_id or 0)

    def roots(self) -> List[Span]:
        return [s for s in self.spans() if s.parent_id is None]

    def children_of(self) -> Dict[Optional[int], List[Span]]:
        """``parent_id -> [children in start order]`` for tree walks."""
        out: Dict[Optional[int], List[Span]] = {}
        for s in self.spans():
            out.setdefault(s.parent_id, []).append(s)
        return out


#: The process-wide recorder all instrumentation records into.
RECORDER = Recorder()


def recorder() -> Recorder:
    """The process-wide :class:`Recorder`."""
    return RECORDER


def span(name: str, **attrs):
    """Module-level shorthand for ``recorder().span(...)``."""
    if not RECORDER._enabled:
        return NULL_SPAN
    return Span(RECORDER, name, attrs)


def enable() -> None:
    RECORDER.enable()


def disable() -> None:
    RECORDER.disable()


def enabled() -> bool:
    return RECORDER._enabled


def reset() -> None:
    RECORDER.reset()
