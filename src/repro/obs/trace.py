"""JSONL trace output: schema, writer and validator.

A trace file holds one JSON object per line:

* exactly one ``meta`` line (first), pinning the schema version;
* one ``span`` line per finished :class:`~repro.obs.core.Span`;
* one ``counter``/``gauge``/``histogram`` line per metric series from
  the registry snapshot taken at flush time.

The schema is pinned the same way ``BENCH_alias.json`` is: the golden
test and ``make profile-smoke`` (via ``python -m repro.obs.trace``)
validate every line against :func:`validate_line`, so downstream
consumers can rely on the layout and any change must bump
:data:`TRACE_SCHEMA_VERSION`.
"""

import json
from typing import Dict, Iterable, Iterator, List, Optional

from repro.obs import core, metrics

#: Bumped whenever the JSONL layout changes.
TRACE_SCHEMA_VERSION = 1

#: Every line kind a trace may contain.
LINE_KINDS = ("meta", "span", "counter", "gauge", "histogram")

#: Required keys per line kind (beyond "schema" and "kind").
_REQUIRED: Dict[str, tuple] = {
    "meta": ("tool", "trace_schema"),
    "span": ("name", "id", "parent", "depth", "start_ms", "duration_ms",
             "thread", "attrs", "error"),
    "counter": ("name", "labels", "value"),
    "gauge": ("name", "labels", "value"),
    "histogram": ("name", "labels", "buckets", "bucket_counts", "count",
                  "sum", "min", "max"),
}


def trace_lines(recorder: Optional[core.Recorder] = None,
                registry: Optional[metrics.MetricsRegistry] = None) -> Iterator[dict]:
    """Every line of a trace flush, meta first, as plain dicts."""
    recorder = recorder or core.recorder()
    registry = registry if registry is not None else metrics.registry()
    yield {
        "schema": TRACE_SCHEMA_VERSION,
        "kind": "meta",
        "tool": "repro",
        "trace_schema": TRACE_SCHEMA_VERSION,
    }
    for span in recorder.spans():
        line = span.to_json(recorder.epoch)
        line["schema"] = TRACE_SCHEMA_VERSION
        yield line
    for entry in registry.snapshot():
        line = dict(entry)
        line["schema"] = TRACE_SCHEMA_VERSION
        yield line


def write_trace(path: str, recorder: Optional[core.Recorder] = None,
                registry: Optional[metrics.MetricsRegistry] = None) -> int:
    """Write the trace to *path*; returns the number of lines written."""
    n = 0
    with open(path, "w") as f:
        for line in trace_lines(recorder, registry):
            f.write(json.dumps(line, sort_keys=True) + "\n")
            n += 1
    return n


# ----------------------------------------------------------------------
# Validation


def validate_line(obj: dict) -> None:
    """Raise ``ValueError`` unless *obj* is a well-formed trace line."""
    if not isinstance(obj, dict):
        raise ValueError("trace line is not an object: {!r}".format(obj))
    if obj.get("schema") != TRACE_SCHEMA_VERSION:
        raise ValueError("bad schema version: {!r}".format(obj.get("schema")))
    kind = obj.get("kind")
    if kind not in LINE_KINDS:
        raise ValueError("unknown line kind: {!r}".format(kind))
    for key in _REQUIRED[kind]:
        if key not in obj:
            raise ValueError("{} line missing key {!r}".format(kind, key))
    if kind == "span":
        if not isinstance(obj["name"], str) or not obj["name"]:
            raise ValueError("span name must be a non-empty string")
        if not isinstance(obj["duration_ms"], (int, float)) or obj["duration_ms"] < 0:
            raise ValueError("span duration_ms must be non-negative")
        if not isinstance(obj["attrs"], dict):
            raise ValueError("span attrs must be an object")
    elif kind in ("counter", "gauge"):
        if not isinstance(obj["value"], (int, float)):
            raise ValueError("{} value must be numeric".format(kind))
    elif kind == "histogram":
        if len(obj["bucket_counts"]) != len(obj["buckets"]) + 1:
            raise ValueError("histogram bucket_counts must have one more "
                             "entry than buckets (+Inf)")


def validate_lines(lines: Iterable[dict]) -> int:
    """Validate a full trace; returns the line count.

    Beyond per-line shape: the first line must be ``meta``, and every
    span's ``parent`` must reference an earlier-emitted span id.
    """
    count = 0
    seen_ids = set()
    for i, obj in enumerate(lines):
        validate_line(obj)
        if i == 0 and obj["kind"] != "meta":
            raise ValueError("first trace line must be kind 'meta'")
        if i > 0 and obj["kind"] == "meta":
            raise ValueError("duplicate meta line at {}".format(i))
        if obj["kind"] == "span":
            seen_ids.add(obj["id"])
            parent = obj["parent"]
            if parent is not None and parent not in seen_ids:
                raise ValueError(
                    "span {} references unknown parent {}".format(
                        obj["id"], parent))
        count += 1
    if count == 0:
        raise ValueError("empty trace")
    return count


def validate_file(path: str) -> int:
    """Validate the JSONL trace at *path*; returns the line count."""

    def parsed() -> Iterator[dict]:
        with open(path) as f:
            for lineno, raw in enumerate(f, 1):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    yield json.loads(raw)
                except json.JSONDecodeError as err:
                    raise ValueError(
                        "{}:{}: not JSON: {}".format(path, lineno, err))

    return validate_lines(parsed())


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.trace FILE...`` — validate trace files."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="validate repro JSONL trace files against the pinned schema")
    parser.add_argument("files", nargs="+")
    args = parser.parse_args(argv)
    status = 0
    for path in args.files:
        try:
            count = validate_file(path)
        except (OSError, ValueError) as err:
            print("{}: INVALID: {}".format(path, err), file=sys.stderr)
            status = 1
        else:
            print("{}: ok ({} lines, schema {})".format(
                path, count, TRACE_SCHEMA_VERSION))
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
