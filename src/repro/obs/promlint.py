"""A promtool-style linter for Prometheus text exposition (0.0.4).

The serving daemon exposes ``GET /v1/metrics`` and ``make bench-quick``
writes ``BENCH_obs.prom``; both are consumed by external scrapers, so
their format is a contract.  This module checks it the way
``promtool check metrics`` would, without the dependency:

* line grammar: ``# HELP``/``# TYPE`` comments, ``name{labels} value``
  samples, metric/label name charsets, label-value escaping
  (``\\\\``, ``\\"``, ``\\n`` only), float-parseable values;
* family structure: at most one ``HELP`` and one ``TYPE`` per family,
  ``HELP`` before ``TYPE``, both before any sample of the family, and
  all of a family's samples contiguous (no interleaving);
* histogram invariants per label-group: a ``+Inf`` bucket present,
  bucket counts cumulative (non-decreasing in ``le`` order), ``_sum``
  and ``_count`` present, and ``_count`` equal to the ``+Inf`` bucket;
* no duplicate series (same name + same label set).

:func:`lint` returns a list of ``"line N: problem"`` strings (empty
means clean); :func:`check` raises :class:`PromLintError` on the first
batch of problems.  ``python -m repro.obs.promlint FILE...`` lints
files (``make obs-smoke`` runs it over a live ``/v1/metrics`` body).
"""

import re
import sys
from typing import Dict, List, Optional, Tuple

__all__ = ["PromLintError", "lint", "check", "main"]

_METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


class PromLintError(ValueError):
    """The exposition text violates the format contract."""


def _parse_float(text: str) -> Optional[float]:
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    try:
        return float(text)
    except ValueError:
        return None


def _parse_labels(text: str) -> Tuple[Optional[Dict[str, str]], Optional[str]]:
    """``k="v",...`` (brace-less interior) -> (labels, problem)."""
    labels: Dict[str, str] = {}
    i = 0
    n = len(text)
    while i < n:
        j = i
        while j < n and text[j] not in "=":
            j += 1
        if j >= n:
            return None, "label without '='"
        name = text[i:j].strip()
        if not _LABEL_RE.match(name):
            return None, "bad label name {!r}".format(name)
        if name in labels:
            return None, "duplicate label {!r}".format(name)
        j += 1
        if j >= n or text[j] != '"':
            return None, "label value must be double-quoted"
        j += 1
        value = []
        while j < n:
            ch = text[j]
            if ch == "\\":
                if j + 1 >= n:
                    return None, "dangling escape in label value"
                nxt = text[j + 1]
                if nxt not in ('\\', '"', "n"):
                    return None, "bad escape \\{} in label value".format(nxt)
                value.append("\n" if nxt == "n" else nxt)
                j += 2
            elif ch == '"':
                break
            elif ch == "\n":
                return None, "unescaped newline in label value"
            else:
                value.append(ch)
                j += 1
        if j >= n or text[j] != '"':
            return None, "unterminated label value"
        labels[name] = "".join(value)
        j += 1
        if j < n:
            if text[j] != ",":
                return None, "expected ',' between labels"
            j += 1
        i = j
    return labels, None


class _Family:
    __slots__ = ("name", "kind", "help_line", "type_line", "samples",
                 "closed")

    def __init__(self, name: str):
        self.name = name
        self.kind: Optional[str] = None
        self.help_line: Optional[int] = None
        self.type_line: Optional[int] = None
        # (suffix, labels, value, lineno) per sample.
        self.samples: List[Tuple[str, Dict[str, str], float, int]] = []
        self.closed = False


def _family_of(sample_name: str,
               families: Dict[str, _Family]) -> Tuple[str, str]:
    """Resolve a sample name to (family, suffix) using declared types."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            fam = families.get(base)
            if fam is not None and fam.kind in ("histogram", "summary"):
                return base, suffix
    return sample_name, ""


def lint(text: str) -> List[str]:
    """All format problems in *text*, as ``"line N: ..."`` strings."""
    problems: List[str] = []
    families: Dict[str, _Family] = {}
    order: List[str] = []
    current: Optional[str] = None
    seen_series = set()

    def family(name: str) -> _Family:
        fam = families.get(name)
        if fam is None:
            fam = families[name] = _Family(name)
            order.append(name)
        return fam

    def switch_to(name: str, lineno: int) -> _Family:
        nonlocal current
        fam = family(name)
        if current is not None and current != name:
            families[current].closed = True
        if fam.closed:
            problems.append(
                "line {}: family {!r} reappears after other families "
                "(samples must be contiguous)".format(lineno, name))
            fam.closed = False
        current = name
        return fam

    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip()
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3:
                    problems.append(
                        "line {}: # {} needs a metric name".format(
                            lineno, parts[1]))
                    continue
                name = parts[2]
                if not _METRIC_RE.match(name):
                    problems.append(
                        "line {}: bad metric name {!r}".format(lineno, name))
                    continue
                fam = switch_to(name, lineno)
                if parts[1] == "HELP":
                    if fam.help_line is not None:
                        problems.append(
                            "line {}: second HELP for {!r}".format(
                                lineno, name))
                    if fam.type_line is not None or fam.samples:
                        problems.append(
                            "line {}: HELP for {!r} must precede its TYPE "
                            "and samples".format(lineno, name))
                    fam.help_line = lineno
                else:
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in _TYPES:
                        problems.append(
                            "line {}: bad TYPE {!r} for {!r}".format(
                                lineno, kind, name))
                    if fam.type_line is not None:
                        problems.append(
                            "line {}: second TYPE for {!r}".format(
                                lineno, name))
                    if fam.samples:
                        problems.append(
                            "line {}: TYPE for {!r} after its samples".format(
                                lineno, name))
                    fam.type_line = lineno
                    fam.kind = kind or None
            # Other # lines are free-form comments: legal, ignored.
            continue
        # Sample line: name[{labels}] value [timestamp]
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)"
                         r"(\s+-?\d+)?$", line)
        if not match:
            problems.append("line {}: unparseable sample line".format(lineno))
            continue
        sample_name, _, label_text, value_text = match.group(1, 2, 3, 4)
        labels: Dict[str, str] = {}
        if label_text:
            parsed, problem = _parse_labels(label_text)
            if problem is not None:
                problems.append("line {}: {}".format(lineno, problem))
                continue
            labels = parsed or {}
        value = _parse_float(value_text)
        if value is None:
            problems.append(
                "line {}: bad sample value {!r}".format(lineno, value_text))
            continue
        base, suffix = _family_of(sample_name, families)
        fam = switch_to(base, lineno)
        series_key = (sample_name, tuple(sorted(labels.items())))
        if series_key in seen_series:
            problems.append(
                "line {}: duplicate series {}{}".format(
                    lineno, sample_name,
                    "{" + ",".join("{}={}".format(k, v)
                                   for k, v in sorted(labels.items())) + "}"
                    if labels else ""))
        seen_series.add(series_key)
        if suffix == "_bucket" and "le" not in labels:
            problems.append(
                "line {}: histogram bucket without 'le' label".format(lineno))
        fam.samples.append((suffix, labels, value, lineno))

    for name in order:
        fam = families[name]
        if fam.kind == "histogram":
            problems.extend(_check_histogram(fam))
        elif fam.kind in ("counter", "gauge"):
            for suffix, labels, value, lineno in fam.samples:
                if fam.kind == "counter" and value < 0:
                    problems.append(
                        "line {}: counter {!r} is negative".format(
                            lineno, name))
    return problems


def _check_histogram(fam: _Family) -> List[str]:
    """Per label-group bucket/sum/count invariants for one histogram."""
    problems: List[str] = []
    groups: Dict[tuple, dict] = {}
    for suffix, labels, value, lineno in fam.samples:
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        group = groups.setdefault(
            key, {"buckets": [], "sum": None, "count": None, "line": lineno})
        if suffix == "_bucket":
            group["buckets"].append((labels.get("le", ""), value, lineno))
        elif suffix == "_sum":
            group["sum"] = value
        elif suffix == "_count":
            group["count"] = value
        else:
            problems.append(
                "line {}: bare sample {!r} for histogram family".format(
                    lineno, fam.name))
    for key, group in groups.items():
        label_text = "{" + ",".join(
            "{}={}".format(k, v) for k, v in key) + "}" if key else ""
        where = "histogram {}{}".format(fam.name, label_text)
        inf = None
        previous = None
        for le, value, lineno in group["buckets"]:
            bound = _parse_float(le)
            if bound is None:
                problems.append(
                    "line {}: {} has unparseable le={!r}".format(
                        lineno, where, le))
                continue
            if previous is not None and value < previous:
                problems.append(
                    "line {}: {} buckets not cumulative "
                    "(le={} count {} < previous {})".format(
                        lineno, where, le, value, previous))
            previous = value
            if bound == float("inf"):
                inf = value
        if inf is None:
            problems.append(
                "line {}: {} missing le=\"+Inf\" bucket".format(
                    group["line"], where))
        if group["sum"] is None:
            problems.append(
                "line {}: {} missing _sum".format(group["line"], where))
        if group["count"] is None:
            problems.append(
                "line {}: {} missing _count".format(group["line"], where))
        elif inf is not None and group["count"] != inf:
            problems.append(
                "line {}: {} _count {} != +Inf bucket {}".format(
                    group["line"], where, group["count"], inf))
    return problems


def check(text: str, source: str = "<metrics>") -> None:
    """Raise :class:`PromLintError` listing every problem in *text*."""
    problems = lint(text)
    if problems:
        raise PromLintError("{}: {} problem(s)\n  {}".format(
            source, len(problems), "\n  ".join(problems)))


def main(argv: Optional[List[str]] = None) -> int:
    """Lint exposition files; exit 1 if any has problems."""
    paths = list(argv if argv is not None else sys.argv[1:])
    if not paths:
        print("usage: python -m repro.obs.promlint FILE...", file=sys.stderr)
        return 2
    status = 0
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as err:
            print("{}: unreadable: {}".format(path, err), file=sys.stderr)
            status = 1
            continue
        problems = lint(text)
        if problems:
            status = 1
            print("{}: INVALID ({} problems)".format(path, len(problems)))
            for problem in problems:
                print("  " + problem)
        else:
            families = sum(1 for line in text.splitlines()
                           if line.startswith("# TYPE "))
            print("{}: ok ({} families)".format(path, families))
    return status


if __name__ == "__main__":
    raise SystemExit(main())
