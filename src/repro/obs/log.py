"""Leveled stderr logging for the CLI.

Replaces the scattered bare ``print(..., file=sys.stderr)`` calls with
four severities and one process-wide threshold:

* :func:`error` — always printed (failure reports, fatal diagnostics);
* :func:`warn`  — printed unless ``-q``;
* :func:`info`  — printed unless ``-q`` (default chatter: stats blocks,
  progress notes);
* :func:`debug` — printed only with ``-v``.

``repro -q ...`` maps to :data:`QUIET`, ``repro -v ...`` to
:data:`DEBUG`; plain output stays on stdout, diagnostics on stderr, so
pipelines keep working regardless of verbosity.
"""

import sys
from typing import Optional, TextIO

QUIET = 0   #: errors only
NORMAL = 1  #: errors + warnings + info (the default)
DEBUG = 2   #: everything

_level = NORMAL


def set_level(level: int) -> None:
    global _level
    _level = level


def get_level() -> int:
    return _level


def set_verbosity(quiet: bool = False, verbose: bool = False) -> None:
    """Map the CLI's ``-q``/``-v`` flags onto a level (``-q`` wins)."""
    if quiet:
        set_level(QUIET)
    elif verbose:
        set_level(DEBUG)
    else:
        set_level(NORMAL)


def _emit(prefix: str, message: str, stream: Optional[TextIO]) -> None:
    print(prefix + message if prefix else message,
          file=stream or sys.stderr)


def error(message: str, stream: Optional[TextIO] = None) -> None:
    """Always printed, whatever the level."""
    _emit("", message, stream)


def warn(message: str, stream: Optional[TextIO] = None) -> None:
    if _level >= NORMAL:
        _emit("warning: ", message, stream)


def info(message: str, stream: Optional[TextIO] = None) -> None:
    if _level >= NORMAL:
        _emit("", message, stream)


def debug(message: str, stream: Optional[TextIO] = None) -> None:
    if _level >= DEBUG:
        _emit("debug: ", message, stream)
