"""Request journal + slow-request access log for the serving daemon.

Two sinks fed once per request by :meth:`Daemon.handle_request`:

* :class:`RequestJournal` — a bounded ring buffer (``collections.deque``)
  of recent request records: op, trace id, wall milliseconds, cache
  outcome, ok/error kind.  Served live as JSON by ``GET /v1/requests``
  and rendered by ``repro top``; O(1) append, fixed memory, thread-safe.
* :class:`AccessLog` — a structured JSONL log of *slow* requests (wall
  time over ``--slow-ms``), deterministically sampled (every Nth slow
  request) so a latency storm cannot turn the log into the bottleneck.
  One JSON object per line, schema pinned by :data:`ACCESS_LOG_KEYS` and
  checked by :func:`validate_access_line` (the obs-smoke battery runs it
  over the file a live daemon wrote).

Neither sink ever raises into the request path: a failed log write
increments ``serve.accesslog.errors`` and serving continues.
"""

import json
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro.obs import metrics

__all__ = ["RequestRecord", "RequestJournal", "AccessLog",
           "validate_access_line", "ACCESS_LOG_KEYS", "DEFAULT_JOURNAL_SIZE"]

#: Ring-buffer capacity: enough context for a dashboard, fixed memory.
DEFAULT_JOURNAL_SIZE = 256

#: Required keys of one access-log JSONL line.
ACCESS_LOG_KEYS = ("ts", "trace", "op", "unit", "ms", "ok", "error",
                   "cache", "slow")


class RequestRecord:
    """One served request, as journalled."""

    __slots__ = ("op", "trace_id", "unit", "ms", "ok", "error_kind",
                 "cache", "ts")

    def __init__(self, op: str, trace_id: str, unit: Optional[str],
                 ms: float, ok: bool, error_kind: Optional[str],
                 cache: Optional[str], ts: float):
        self.op = op
        self.trace_id = trace_id
        self.unit = unit
        self.ms = ms
        self.ok = ok
        self.error_kind = error_kind
        #: Session-cache outcome for source ops: hit/restore/build/None.
        self.cache = cache
        self.ts = ts

    def to_json(self) -> dict:
        return {
            "op": self.op,
            "trace": self.trace_id,
            "unit": self.unit,
            "ms": round(self.ms, 3),
            "ok": self.ok,
            "error": self.error_kind,
            "cache": self.cache,
            "ts": round(self.ts, 3),
        }


class RequestJournal:
    """Thread-safe bounded ring of recent :class:`RequestRecord`\\ s."""

    def __init__(self, size: int = DEFAULT_JOURNAL_SIZE):
        self._ring: "deque[RequestRecord]" = deque(maxlen=max(1, size))
        self._lock = threading.Lock()
        self._total = 0

    def record(self, record: RequestRecord) -> None:
        with self._lock:
            self._ring.append(record)
            self._total += 1

    @property
    def total(self) -> int:
        """Requests ever journalled (ring evictions included)."""
        with self._lock:
            return self._total

    def recent(self, limit: Optional[int] = None) -> List[RequestRecord]:
        """Newest-first records, at most *limit*."""
        with self._lock:
            records = list(self._ring)
        records.reverse()
        if limit is not None:
            records = records[:limit]
        return records

    def snapshot(self, limit: Optional[int] = None) -> dict:
        """The ``GET /v1/requests`` payload."""
        return {
            "total": self.total,
            "requests": [r.to_json() for r in self.recent(limit)],
        }


class AccessLog:
    """Sampled JSONL log of slow requests (``--slow-ms``)."""

    def __init__(self, path: str, slow_ms: float, sample: int = 1):
        self.path = path
        self.slow_ms = slow_ms
        #: Log every Nth slow request (1 = all); deterministic counter
        #: based so tests and replays see the same lines.
        self.sample = max(1, sample)
        self._lock = threading.Lock()
        self._slow_seen = 0

    def maybe_log(self, record: RequestRecord) -> bool:
        """Write *record* if slow and selected by sampling; True if written."""
        if record.ms < self.slow_ms:
            return False
        with self._lock:
            self._slow_seen += 1
            if (self._slow_seen - 1) % self.sample != 0:
                metrics.registry().counter("serve.accesslog.sampled_out").inc()
                return False
            line = json.dumps(dict(record.to_json(), slow=True),
                              sort_keys=True)
            try:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
            except OSError:
                # Logging must never fail a request.
                metrics.registry().counter("serve.accesslog.errors").inc()
                return False
        metrics.registry().counter("serve.accesslog.lines").inc()
        return True


def validate_access_line(line: str) -> dict:
    """Validate one access-log JSONL line; returns the decoded object.

    Raises ValueError with a precise message on any violation — the
    obs-smoke battery runs this over every line a live daemon wrote.
    """
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as err:
        raise ValueError("not JSON: {}".format(err))
    if not isinstance(obj, dict):
        raise ValueError("line must be a JSON object")
    missing = [k for k in ACCESS_LOG_KEYS if k not in obj]
    if missing:
        raise ValueError("missing keys: {}".format(", ".join(missing)))
    if not isinstance(obj["trace"], str) or not obj["trace"]:
        raise ValueError("'trace' must be a non-empty string")
    if not isinstance(obj["op"], str):
        raise ValueError("'op' must be a string")
    if not isinstance(obj["ms"], (int, float)):
        raise ValueError("'ms' must be a number")
    if not isinstance(obj["ok"], bool):
        raise ValueError("'ok' must be a boolean")
    if obj["slow"] is not True:
        raise ValueError("'slow' must be true in the access log")
    return obj


def now() -> float:
    """Wall-clock seconds (split out so tests can monkeypatch)."""
    return time.time()
