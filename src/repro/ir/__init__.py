"""Typed intermediate representation for MiniM3.

The IR is a conventional three-address, basic-block CFG form with one
paper-specific twist: every heap memory instruction carries the *access
path* (:mod:`repro.ir.access_path`) it realises, because TBAA and RLE both
reason about lexical access paths (Table 1 of the paper), not raw
addresses.

Modules:

* :mod:`repro.ir.access_path` — the AP algebra (Qualify / Deref /
  Subscript over variable roots);
* :mod:`repro.ir.instructions` — instruction set;
* :mod:`repro.ir.cfg` — basic blocks, per-procedure CFGs, the whole-program
  :class:`~repro.ir.cfg.ProgramIR`;
* :mod:`repro.ir.lowering` — AST → IR (incl. implicit dope-vector loads
  for open arrays);
* :mod:`repro.ir.dominators`, :mod:`repro.ir.loops` — dominator tree and
  natural-loop detection used by the load hoister;
* :mod:`repro.ir.printer` — human-readable IR dumps.
"""

from repro.ir.access_path import (
    AccessPath,
    VarRoot,
    FreshRoot,
    Qualify,
    Deref,
    Subscript,
    ConstIndex,
    VarIndex,
    UnknownIndex,
    strip_index,
)
from repro.ir.cfg import BasicBlock, ProcIR, ProgramIR
from repro.ir.lowering import lower_module, lower_program
from repro.ir.dominators import DominatorTree
from repro.ir.loops import NaturalLoop, find_natural_loops
from repro.ir.printer import format_proc, format_program
from repro.ir.verify import verify_proc, verify_program, IRVerificationError

__all__ = [
    "AccessPath",
    "VarRoot",
    "FreshRoot",
    "strip_index",
    "Qualify",
    "Deref",
    "Subscript",
    "ConstIndex",
    "VarIndex",
    "UnknownIndex",
    "BasicBlock",
    "ProcIR",
    "ProgramIR",
    "lower_module",
    "lower_program",
    "DominatorTree",
    "NaturalLoop",
    "find_natural_loops",
    "format_proc",
    "format_program",
    "verify_proc",
    "verify_program",
    "IRVerificationError",
]
