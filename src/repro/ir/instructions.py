"""IR instruction set.

Three-address code over virtual registers (:class:`Temp`).  Memory is
explicit: variable slots are read/written by ``LoadVar``/``StoreVar``,
heap cells by the Load*/Store* families, each of which carries the
:class:`~repro.ir.access_path.AccessPath` it realises.

Classification used by the metrics (Table 4 of the paper):

* **heap loads** — ``LoadField``, ``LoadElem``, ``LoadDopeData``,
  ``LoadDopeCount``, and ``LoadInd`` when the handle points into the heap;
* **other loads** — ``LoadVar`` of a *global* (module-level) variable, and
  ``LoadInd`` hitting a stack slot.  Reads of locals and parameters are
  register accesses (we model the register allocation GCC performed for
  the paper's baseline by keeping scalars in registers).

``LoadDopeData``/``LoadDopeCount`` are the implicit dope-vector accesses
of open arrays.  They are *invisible to RLE* — the paper's optimizer works
on the AST where these loads do not appear, which is exactly why
"Encapsulation" dominates its Figure 10.  The flag ``is_dope`` lets the
limit study classify them.
"""

import itertools
from typing import List, Optional, Sequence

from repro.ir.access_path import AccessPath
from repro.lang.errors import SourceLocation, UNKNOWN_LOCATION
from repro.lang.symtab import Symbol
from repro.lang.types import ArrayType, ObjectType, RecordType, RefType, Type

_instr_uid = itertools.count()


class Temp:
    """A virtual register, unique within its procedure."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def __repr__(self) -> str:
        return "t{}".format(self.index)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Temp) and other.index == self.index

    def __hash__(self) -> int:
        return hash(("temp", self.index))


class Instr:
    """Base instruction.  Subclasses set the class attributes below."""

    is_heap_load = False
    is_heap_store = False
    is_dope = False
    is_call = False
    is_terminator = False
    #: Set on loads re-materialised by the hoister: a NIL base or bad
    #: index yields a junk default instead of a trap (non-faulting load).
    speculative = False
    #: False for register-allocation artifacts (RLE shadow moves, inline
    #: parameter bindings): they cost nothing on a real machine, so the
    #: interpreter excludes them from instruction counts and cycles.
    counted = True

    def __init__(self, loc: SourceLocation = UNKNOWN_LOCATION):
        self.uid = next(_instr_uid)
        self.loc = loc

    @property
    def dest(self) -> Optional[Temp]:
        return None

    @property
    def sources(self) -> Sequence[Temp]:
        return ()

    @property
    def ap(self) -> Optional[AccessPath]:
        return None

    def __repr__(self) -> str:
        return "<{} #{}>".format(type(self).__name__, self.uid)


# ----------------------------------------------------------------------
# Constants, moves, variables


class ConstInstr(Instr):
    """dest := literal (int, bool, char, text, or None for NIL)."""

    def __init__(self, dest: Temp, value: object, loc=UNKNOWN_LOCATION):
        super().__init__(loc)
        self._dest = dest
        self.value = value

    @property
    def dest(self) -> Temp:
        return self._dest


class Move(Instr):
    """dest := src (register copy; free in the cost model)."""

    def __init__(self, dest: Temp, src: Temp, loc=UNKNOWN_LOCATION):
        super().__init__(loc)
        self._dest = dest
        self.src = src

    @property
    def dest(self) -> Temp:
        return self._dest

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.src,)


class LoadVar(Instr):
    """dest := variable slot.  A memory access only for globals."""

    def __init__(self, dest: Temp, symbol: Symbol, loc=UNKNOWN_LOCATION):
        super().__init__(loc)
        self._dest = dest
        self.symbol = symbol

    @property
    def dest(self) -> Temp:
        return self._dest

    @property
    def is_global_load(self) -> bool:
        return self.symbol.is_global


class StoreVar(Instr):
    """variable slot := src."""

    def __init__(self, symbol: Symbol, src: Temp, loc=UNKNOWN_LOCATION):
        super().__init__(loc)
        self.symbol = symbol
        self.src = src

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.src,)


class BinOp(Instr):
    """dest := left <op> right."""

    def __init__(self, dest: Temp, op: str, left: Temp, right: Temp, loc=UNKNOWN_LOCATION):
        super().__init__(loc)
        self._dest = dest
        self.op = op
        self.left = left
        self.right = right

    @property
    def dest(self) -> Temp:
        return self._dest

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.left, self.right)


class UnOp(Instr):
    """dest := <op> operand."""

    def __init__(self, dest: Temp, op: str, operand: Temp, loc=UNKNOWN_LOCATION):
        super().__init__(loc)
        self._dest = dest
        self.op = op
        self.operand = operand

    @property
    def dest(self) -> Temp:
        return self._dest

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.operand,)


# ----------------------------------------------------------------------
# Heap accesses (all carry an AccessPath)


class _MemInstr(Instr):
    def __init__(self, ap: AccessPath, loc=UNKNOWN_LOCATION):
        super().__init__(loc)
        self._ap = ap

    @property
    def ap(self) -> AccessPath:
        return self._ap


class LoadField(_MemInstr):
    """dest := base.field — heap load (Qualify AP)."""

    is_heap_load = True

    def __init__(self, dest: Temp, base: Temp, field: str, ap: AccessPath, loc=UNKNOWN_LOCATION):
        super().__init__(ap, loc)
        self._dest = dest
        self.base = base
        self.field = field

    @property
    def dest(self) -> Temp:
        return self._dest

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.base,)


class StoreField(_MemInstr):
    """base.field := src — heap store."""

    is_heap_store = True

    def __init__(self, base: Temp, field: str, src: Temp, ap: AccessPath, loc=UNKNOWN_LOCATION):
        super().__init__(ap, loc)
        self.base = base
        self.field = field
        self.src = src

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.base, self.src)


class LoadElem(_MemInstr):
    """dest := base[index] — heap load (Subscript AP)."""

    is_heap_load = True

    def __init__(self, dest: Temp, base: Temp, index: Temp, ap: AccessPath, loc=UNKNOWN_LOCATION):
        super().__init__(ap, loc)
        self._dest = dest
        self.base = base
        self.index = index

    @property
    def dest(self) -> Temp:
        return self._dest

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.base, self.index)


class StoreElem(_MemInstr):
    """base[index] := src — heap store."""

    is_heap_store = True

    def __init__(self, base: Temp, index: Temp, src: Temp, ap: AccessPath, loc=UNKNOWN_LOCATION):
        super().__init__(ap, loc)
        self.base = base
        self.index = index
        self.src = src

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.base, self.index, self.src)


class LoadDopeData(_MemInstr):
    """dest := dope(base).data — implicit open-array access (invisible to RLE)."""

    is_heap_load = True
    is_dope = True

    def __init__(self, dest: Temp, base: Temp, ap: AccessPath, loc=UNKNOWN_LOCATION):
        super().__init__(ap, loc)
        self._dest = dest
        self.base = base

    @property
    def dest(self) -> Temp:
        return self._dest

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.base,)


class LoadDopeCount(_MemInstr):
    """dest := dope(base).count — implicit open-array bound (invisible to RLE)."""

    is_heap_load = True
    is_dope = True

    def __init__(self, dest: Temp, base: Temp, ap: AccessPath, loc=UNKNOWN_LOCATION):
        super().__init__(ap, loc)
        self._dest = dest
        self.base = base

    @property
    def dest(self) -> Temp:
        return self._dest

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.base,)


class LoadInd(_MemInstr):
    """dest := *handle — read through a VAR-param/WITH location handle.

    Counts as a heap load when the handle points into the heap, as an
    "other" load when it points at a variable slot; the interpreter
    decides dynamically and the metrics record both tallies.
    """

    is_heap_load = True  # conservative static classification

    def __init__(self, dest: Temp, handle: Temp, ap: AccessPath, loc=UNKNOWN_LOCATION):
        super().__init__(ap, loc)
        self._dest = dest
        self.handle = handle

    @property
    def dest(self) -> Temp:
        return self._dest

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.handle,)


class StoreInd(_MemInstr):
    """*handle := src — write through a location handle."""

    is_heap_store = True

    def __init__(self, handle: Temp, src: Temp, ap: AccessPath, loc=UNKNOWN_LOCATION):
        super().__init__(ap, loc)
        self.handle = handle
        self.src = src

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.handle, self.src)


# ----------------------------------------------------------------------
# Address-of (location handles for VAR arguments and WITH)


class AddrVar(Instr):
    """dest := &variable — handle to a variable slot."""

    def __init__(self, dest: Temp, symbol: Symbol, loc=UNKNOWN_LOCATION):
        super().__init__(loc)
        self._dest = dest
        self.symbol = symbol

    @property
    def dest(self) -> Temp:
        return self._dest


class AddrField(_MemInstr):
    """dest := &base.field — handle to a heap field."""

    def __init__(self, dest: Temp, base: Temp, field: str, ap: AccessPath, loc=UNKNOWN_LOCATION):
        super().__init__(ap, loc)
        self._dest = dest
        self.base = base
        self.field = field

    @property
    def dest(self) -> Temp:
        return self._dest

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.base,)


class AddrElem(_MemInstr):
    """dest := &base[index] — handle to an array element."""

    def __init__(self, dest: Temp, base: Temp, index: Temp, ap: AccessPath, loc=UNKNOWN_LOCATION):
        super().__init__(ap, loc)
        self._dest = dest
        self.base = base
        self.index = index

    @property
    def dest(self) -> Temp:
        return self._dest

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.base, self.index)


# ----------------------------------------------------------------------
# Allocation


class NewObject(Instr):
    """dest := NEW(object type)."""

    def __init__(self, dest: Temp, object_type: ObjectType, loc=UNKNOWN_LOCATION):
        super().__init__(loc)
        self._dest = dest
        self.object_type = object_type

    @property
    def dest(self) -> Temp:
        return self._dest


class NewRecord(Instr):
    """dest := NEW(REF RECORD ...)."""

    def __init__(self, dest: Temp, ref_type: RefType, loc=UNKNOWN_LOCATION):
        super().__init__(loc)
        self._dest = dest
        self.ref_type = ref_type

    @property
    def dest(self) -> Temp:
        return self._dest


class NewFixedArray(Instr):
    """dest := NEW(REF ARRAY [0..n] OF T)."""

    def __init__(self, dest: Temp, ref_type: RefType, loc=UNKNOWN_LOCATION):
        super().__init__(loc)
        self._dest = dest
        self.ref_type = ref_type

    @property
    def dest(self) -> Temp:
        return self._dest


class NewOpenArray(Instr):
    """dest := NEW(REF ARRAY OF T, size) — allocates dope + data."""

    def __init__(self, dest: Temp, ref_type: RefType, size: Temp, loc=UNKNOWN_LOCATION):
        super().__init__(loc)
        self._dest = dest
        self.ref_type = ref_type
        self.size = size

    @property
    def dest(self) -> Temp:
        return self._dest

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.size,)


# ----------------------------------------------------------------------
# Calls and builtins


class Call(Instr):
    """dest := proc(args) — direct call."""

    is_call = True

    def __init__(
        self,
        dest: Optional[Temp],
        proc_name: str,
        args: List[Temp],
        loc=UNKNOWN_LOCATION,
    ):
        super().__init__(loc)
        self._dest = dest
        self.proc_name = proc_name
        self.args = args

    @property
    def dest(self) -> Optional[Temp]:
        return self._dest

    @property
    def sources(self) -> Sequence[Temp]:
        return tuple(self.args)


class CallMethod(Instr):
    """dest := receiver.method(args) — dynamic dispatch on the receiver.

    ``static_receiver_type`` is the declared type of the receiver
    expression; the call graph and the devirtualizer use it to bound the
    possible implementations (Subtypes of the static type).
    """

    is_call = True

    def __init__(
        self,
        dest: Optional[Temp],
        receiver: Temp,
        method_name: str,
        args: List[Temp],
        static_receiver_type: ObjectType,
        loc=UNKNOWN_LOCATION,
    ):
        super().__init__(loc)
        self._dest = dest
        self.receiver = receiver
        self.method_name = method_name
        self.args = args
        self.static_receiver_type = static_receiver_type

    @property
    def dest(self) -> Optional[Temp]:
        return self._dest

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.receiver,) + tuple(self.args)


class Builtin(Instr):
    """dest := builtin(args) — pure or I/O builtin (ORD, PutText, ...).

    Builtins never touch program-visible heap memory; TEXT values are
    opaque (the paper excludes the standard library from measurement, so
    text machinery is modelled as zero-heap primitives).
    """

    is_call = False

    def __init__(self, dest: Optional[Temp], name: str, args: List[Temp], loc=UNKNOWN_LOCATION):
        super().__init__(loc)
        self._dest = dest
        self.name = name
        self.args = args

    @property
    def dest(self) -> Optional[Temp]:
        return self._dest

    @property
    def sources(self) -> Sequence[Temp]:
        return tuple(self.args)


class TypeTest(Instr):
    """dest := ISTYPE(src, T)."""

    def __init__(self, dest: Temp, src: Temp, target_type: ObjectType, loc=UNKNOWN_LOCATION):
        super().__init__(loc)
        self._dest = dest
        self.src = src
        self.target_type = target_type

    @property
    def dest(self) -> Temp:
        return self._dest

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.src,)


class NarrowChk(Instr):
    """dest := NARROW(src, T) — runtime-checked downcast."""

    def __init__(self, dest: Temp, src: Temp, target_type: ObjectType, loc=UNKNOWN_LOCATION):
        super().__init__(loc)
        self._dest = dest
        self.src = src
        self.target_type = target_type

    @property
    def dest(self) -> Temp:
        return self._dest

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.src,)


# ----------------------------------------------------------------------
# Control flow (terminators)


class Jump(Instr):
    is_terminator = True

    def __init__(self, target: "object", loc=UNKNOWN_LOCATION):
        super().__init__(loc)
        self.target = target  # BasicBlock

    @property
    def successors(self):
        return (self.target,)


class Branch(Instr):
    is_terminator = True

    def __init__(self, cond: Temp, if_true: "object", if_false: "object", loc=UNKNOWN_LOCATION):
        super().__init__(loc)
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.cond,)

    @property
    def successors(self):
        return (self.if_true, self.if_false)


class Return(Instr):
    is_terminator = True

    def __init__(self, value: Optional[Temp], loc=UNKNOWN_LOCATION):
        super().__init__(loc)
        self.value = value

    @property
    def sources(self) -> Sequence[Temp]:
        return (self.value,) if self.value is not None else ()

    @property
    def successors(self):
        return ()


HEAP_LOAD_CLASSES = (LoadField, LoadElem, LoadDopeData, LoadDopeCount, LoadInd)
HEAP_STORE_CLASSES = (StoreField, StoreElem, StoreInd)
