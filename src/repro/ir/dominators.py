"""Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).

The load hoister needs dominance twice: a hoist candidate must be
"executed on every iteration of the loop" (the paper's wording), which we
check as *the load's block dominates every back-edge source of the loop*,
and preheader insertion must know the loop header's dominator structure.
"""

from typing import Dict, List, Optional

from repro.ir.cfg import BasicBlock, ProcIR


class DominatorTree:
    """Immediate-dominator tree for one procedure's CFG."""

    def __init__(self, proc: ProcIR):
        self.proc = proc
        self.blocks = proc.blocks()  # reverse postorder
        self._rpo_index: Dict[BasicBlock, int] = {
            block: i for i, block in enumerate(self.blocks)
        }
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._compute()

    def _compute(self) -> None:
        entry = self.proc.entry
        preds = self.proc.predecessors()
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {b: None for b in self.blocks}
        idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for block in self.blocks:
                if block is entry:
                    continue
                processed = [p for p in preds[block] if idom.get(p) is not None]
                if not processed:
                    continue
                new_idom = processed[0]
                for other in processed[1:]:
                    new_idom = self._intersect(new_idom, other, idom)
                if idom[block] is not new_idom:
                    idom[block] = new_idom
                    changed = True
        idom[entry] = None  # the entry has no immediate dominator
        self.idom = idom

    def _intersect(
        self,
        a: BasicBlock,
        b: BasicBlock,
        idom: Dict[BasicBlock, Optional[BasicBlock]],
    ) -> BasicBlock:
        index = self._rpo_index
        while a is not b:
            while index[a] > index[b]:
                parent = idom[a]
                assert parent is not None
                a = parent
            while index[b] > index[a]:
                parent = idom[b]
                assert parent is not None
                b = parent
        return a

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True iff *a* dominates *b* (reflexively)."""
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            node = self.idom.get(node)
        return False

    def dominators_of(self, block: BasicBlock) -> List[BasicBlock]:
        """All dominators of *block*, from itself up to the entry."""
        chain: List[BasicBlock] = []
        node: Optional[BasicBlock] = block
        while node is not None:
            chain.append(node)
            node = self.idom.get(node)
        return chain
