"""Human-readable IR dumps (for debugging and the examples)."""

from typing import List

from repro.ir import instructions as ins
from repro.ir.cfg import ProcIR, ProgramIR


def format_instr(instr: ins.Instr) -> str:
    """One-line rendering of a single instruction."""
    name = type(instr).__name__
    if isinstance(instr, ins.ConstInstr):
        return "{} := const {!r}".format(instr.dest, instr.value)
    if isinstance(instr, ins.Move):
        return "{} := {}".format(instr.dest, instr.src)
    if isinstance(instr, ins.LoadVar):
        return "{} := var {}".format(instr.dest, instr.symbol.name)
    if isinstance(instr, ins.StoreVar):
        return "var {} := {}".format(instr.symbol.name, instr.src)
    if isinstance(instr, ins.BinOp):
        return "{} := {} {} {}".format(instr.dest, instr.left, instr.op, instr.right)
    if isinstance(instr, ins.UnOp):
        return "{} := {} {}".format(instr.dest, instr.op, instr.operand)
    if isinstance(instr, ins.LoadField):
        return "{} := load {}.{}  ; ap={}".format(instr.dest, instr.base, instr.field, instr.ap)
    if isinstance(instr, ins.StoreField):
        return "store {}.{} := {}  ; ap={}".format(instr.base, instr.field, instr.src, instr.ap)
    if isinstance(instr, ins.LoadElem):
        return "{} := load {}[{}]  ; ap={}".format(instr.dest, instr.base, instr.index, instr.ap)
    if isinstance(instr, ins.StoreElem):
        return "store {}[{}] := {}  ; ap={}".format(instr.base, instr.index, instr.src, instr.ap)
    if isinstance(instr, ins.LoadDopeData):
        return "{} := dope-data {}  ; ap={}".format(instr.dest, instr.base, instr.ap)
    if isinstance(instr, ins.LoadDopeCount):
        return "{} := dope-count {}  ; ap={}".format(instr.dest, instr.base, instr.ap)
    if isinstance(instr, ins.LoadInd):
        return "{} := load *{}  ; ap={}".format(instr.dest, instr.handle, instr.ap)
    if isinstance(instr, ins.StoreInd):
        return "store *{} := {}  ; ap={}".format(instr.handle, instr.src, instr.ap)
    if isinstance(instr, ins.AddrVar):
        return "{} := addr var {}".format(instr.dest, instr.symbol.name)
    if isinstance(instr, ins.AddrField):
        return "{} := addr {}.{}  ; ap={}".format(instr.dest, instr.base, instr.field, instr.ap)
    if isinstance(instr, ins.AddrElem):
        return "{} := addr {}[{}]  ; ap={}".format(instr.dest, instr.base, instr.index, instr.ap)
    if isinstance(instr, ins.NewObject):
        return "{} := new object {}".format(instr.dest, instr.object_type.name)
    if isinstance(instr, ins.NewRecord):
        return "{} := new {}".format(instr.dest, instr.ref_type.name)
    if isinstance(instr, ins.NewFixedArray):
        return "{} := new {}".format(instr.dest, instr.ref_type.name)
    if isinstance(instr, ins.NewOpenArray):
        return "{} := new {} size={}".format(instr.dest, instr.ref_type.name, instr.size)
    if isinstance(instr, ins.Call):
        args = ", ".join(str(a) for a in instr.args)
        prefix = "{} := ".format(instr.dest) if instr.dest else ""
        return "{}call {}({})".format(prefix, instr.proc_name, args)
    if isinstance(instr, ins.CallMethod):
        args = ", ".join(str(a) for a in instr.args)
        prefix = "{} := ".format(instr.dest) if instr.dest else ""
        return "{}callm {}.{}({})".format(prefix, instr.receiver, instr.method_name, args)
    if isinstance(instr, ins.Builtin):
        args = ", ".join(str(a) for a in instr.args)
        prefix = "{} := ".format(instr.dest) if instr.dest else ""
        return "{}builtin {}({})".format(prefix, instr.name, args)
    if isinstance(instr, ins.TypeTest):
        return "{} := istype {} {}".format(instr.dest, instr.src, instr.target_type.name)
    if isinstance(instr, ins.NarrowChk):
        return "{} := narrow {} {}".format(instr.dest, instr.src, instr.target_type.name)
    if isinstance(instr, ins.Jump):
        return "jump {}".format(instr.target.name)
    if isinstance(instr, ins.Branch):
        return "branch {} ? {} : {}".format(instr.cond, instr.if_true.name, instr.if_false.name)
    if isinstance(instr, ins.Return):
        return "return {}".format(instr.value if instr.value is not None else "")
    return name


def format_proc(proc: ProcIR) -> str:
    """Multi-line rendering of a procedure's CFG."""
    lines: List[str] = ["proc {} (temps={})".format(proc.name, proc.n_temps)]
    for block in proc.blocks():
        lines.append("  {}:".format(block.name))
        for instr in block.all_instrs():
            lines.append("    {}".format(format_instr(instr)))
    return "\n".join(lines)


def format_program(program: ProgramIR) -> str:
    return "\n\n".join(format_proc(p) for p in program.user_procs())
