"""Access paths (APs) — the unit TBAA and RLE reason about.

Table 1 of the paper defines three memory-reference constructors:

=========  ===========  =======================================
Notation   Name         Meaning
=========  ===========  =======================================
``p.f``    Qualify      access field ``f`` of object/record ``p``
``p^``     Dereference  dereference pointer ``p``
``p[i]``   Subscript    array ``p`` with subscript ``i``
=========  ===========  =======================================

An AP is a non-empty string of these over a variable root, e.g.
``a.b^[i].c``.  This module represents APs as immutable trees:

* :class:`VarRoot` — a program variable (not itself a memory reference);
* :class:`Qualify` / :class:`Deref` / :class:`Subscript` — the three
  reference constructors.

Two distinct equality notions coexist:

* **structural identity** (``==``) — same constructors over the same root
  symbols and, for subscripts, the same lexical index term.  RLE uses this
  to recognise "the same load again" (case 1 of Table 2 is ``p ≡ p``).
* **may-alias** — decided by the analyses in :mod:`repro.analysis`, which
  pattern-match on the constructor pairs exactly as Table 2 prescribes.

Subscript indices carry a lexical term (:class:`ConstIndex`,
:class:`VarIndex`, or :class:`UnknownIndex` for anything more complex)
because RLE must distinguish ``t[i]`` from ``t[j]`` (Figure 7 of the
paper), while the alias analyses deliberately ignore the subscript
(Table 2, case 6).

AP nodes are **hash-consed**: constructing the same path over the same
root symbols, fields, index terms and types returns the pointer-identical
node, and every node carries a dense integer :attr:`~AccessPath.uid`.
The alias analyses key their query caches on ``(uid, uid)`` pairs and
:func:`strip_index` memoises its result on the node, so repeated queries
never re-hash or re-canonicalise a tree.  :class:`FreshRoot` and
subscripts with an :class:`UnknownIndex` are intentionally generative
(never equal to another occurrence), so they bypass the intern table but
still receive uids.
"""

import itertools
import weakref
from typing import FrozenSet, List, Optional, Union

from repro.lang.symtab import Symbol
from repro.lang.types import ObjectType, Type

# ----------------------------------------------------------------------
# Index terms for Subscript


class IndexTerm:
    """Lexical description of a subscript expression."""

    __slots__ = ()

    def root_symbols(self) -> FrozenSet[Symbol]:
        return frozenset()


class ConstIndex(IndexTerm):
    """A compile-time constant subscript, e.g. ``a[0]``."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstIndex) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("const-index", self.value))

    def __str__(self) -> str:
        return str(self.value)


class VarIndex(IndexTerm):
    """A plain-variable subscript, e.g. ``a[i]``."""

    __slots__ = ("symbol",)

    def __init__(self, symbol: Symbol):
        self.symbol = symbol

    def root_symbols(self) -> FrozenSet[Symbol]:
        return frozenset((self.symbol,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VarIndex) and other.symbol is self.symbol

    def __hash__(self) -> int:
        return hash(("var-index", self.symbol.uid))

    def __str__(self) -> str:
        return self.symbol.name


_unknown_counter = itertools.count()


class UnknownIndex(IndexTerm):
    """A subscript too complex to name lexically; never equal to another.

    Each occurrence gets a unique serial so ``a[f(x)]`` is not considered
    the same location as the next ``a[f(x)]`` — conservative for RLE,
    irrelevant for aliasing (which ignores indices anyway).
    """

    __slots__ = ("serial",)

    def __init__(self) -> None:
        self.serial = next(_unknown_counter)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UnknownIndex) and other.serial == self.serial

    def __hash__(self) -> int:
        return hash(("unknown-index", self.serial))

    def __str__(self) -> str:
        return "?"


# ----------------------------------------------------------------------
# Access paths

#: Global intern table for hash-consed AP nodes.  Keys are flat tuples of
#: ints/strings (uids and object ids of components the node keeps alive);
#: values are weakly referenced so dropping a program frees its paths.
_intern_table: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

_uid_counter = itertools.count()


def interned_path_count() -> int:
    """Number of live interned AP nodes (for tests and benchmarks)."""
    return len(_intern_table)


class _InternMeta(type):
    """Hash-consing constructor: structurally-equal APs are identical.

    Each concrete AP class provides ``_intern_key(...)`` mirroring its
    ``__init__`` signature; a ``None`` key means the node is generative
    (FreshRoot, UnknownIndex subscripts) and is built fresh every time.
    """

    def __call__(cls, *args, **kwargs):
        key = cls._intern_key(*args, **kwargs)
        if key is None:
            return super().__call__(*args, **kwargs)
        node = _intern_table.get(key)
        if node is None:
            node = super().__call__(*args, **kwargs)
            _intern_table[key] = node
        return node


class AccessPath(metaclass=_InternMeta):
    """Base class: an AP node with a static type (``Type(p)``)."""

    __slots__ = ("type", "uid", "_stripped", "__weakref__")

    def __init__(self, type: Type):
        self.type = type
        #: Dense integer identity; caches key on pairs of these.
        self.uid = next(_uid_counter)
        #: Memoised ``strip_index(self)`` (None until first computed).
        self._stripped: Optional["AccessPath"] = None

    @staticmethod
    def _intern_key(*args, **kwargs):
        return None  # base class nodes are never constructed directly

    # -- structure -----------------------------------------------------

    @property
    def base(self) -> Optional["AccessPath"]:
        """The AP this one is built on (None for roots)."""
        return None

    def root(self) -> "AccessPath":
        """The root at the bottom of the path (VarRoot or FreshRoot)."""
        node: AccessPath = self
        while node.base is not None:
            node = node.base
        return node

    def root_symbols(self) -> FrozenSet[Symbol]:
        """All symbols this path lexically depends on (root + indices).

        An assignment to any of these changes what the path denotes, so
        RLE kills availability of the AP when one is redefined.
        """
        symbols: List[Symbol] = []
        node: Optional[AccessPath] = self
        while node is not None:
            if isinstance(node, VarRoot):
                symbols.append(node.symbol)
            elif isinstance(node, Subscript):
                symbols.extend(node.index.root_symbols())
            node = node.base
        return frozenset(symbols)

    def depth(self) -> int:
        """Number of reference constructors in the path."""
        count, node = 0, self
        while node.base is not None:
            count += 1
            node = node.base
        return count

    def is_memory_reference(self) -> bool:
        """True for Qualify/Deref/Subscript; False for a bare variable."""
        return not isinstance(self, VarRoot)


class VarRoot(AccessPath):
    """The variable at the root of a path.

    ``is_handle`` marks roots that denote a *location handle* — a VAR
    parameter or a WITH binding to a designator.  Reads through a handle
    are represented as ``Deref(VarRoot(handle))``, exactly how the paper
    treats pass-by-reference formals (its revised AddressTaken in
    Section 4 talks about "pass-by-reference formals" aliasing qualified
    and subscripted expressions through dereferences).
    """

    __slots__ = ("symbol",)

    def __init__(self, symbol: Symbol):
        assert symbol.type is not None
        super().__init__(symbol.type)
        self.symbol = symbol

    @staticmethod
    def _intern_key(symbol: Symbol):
        return ("var", symbol.uid)

    @property
    def is_handle(self) -> bool:
        return self.symbol.by_reference or (
            self.symbol.kind == "with" and self.symbol.binds_location
        )

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return isinstance(other, VarRoot) and other.symbol is self.symbol

    def __hash__(self) -> int:
        return hash(("var", self.symbol.uid))

    def __str__(self) -> str:
        return self.symbol.name


class FreshRoot(AccessPath):
    """An anonymous root for paths based on non-designator expressions.

    ``NEW(T).f`` or ``Make().f`` root their paths in the value of a
    compiler temporary; the paper's compiler would bind it to a fresh
    variable.  Fresh roots are never lexically equal to anything else,
    and alias queries treat them like variables of their static type
    (Table 2 falls through to case 7, TypeDecl).
    """

    __slots__ = ("serial",)

    def __init__(self, type: Type):
        super().__init__(type)
        self.serial = next(_unknown_counter)

    @staticmethod
    def _intern_key(type: Type):
        return None  # generative: every FreshRoot is distinct

    @property
    def is_handle(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FreshRoot) and other.serial == self.serial

    def __hash__(self) -> int:
        return hash(("fresh", self.serial))

    def __str__(self) -> str:
        return "<tmp{}:{}>".format(self.serial, self.type.name)


class Qualify(AccessPath):
    """``p.f`` — field access.  ``owner`` is the type declaring ``f``."""

    __slots__ = ("_base", "field", "owner")

    def __init__(self, base: AccessPath, field: str, field_type: Type,
                 owner: Optional[ObjectType] = None):
        super().__init__(field_type)
        self._base = base
        self.field = field
        self.owner = owner

    @staticmethod
    def _intern_key(base: AccessPath, field: str, field_type: Type,
                    owner: Optional[ObjectType] = None):
        return ("qualify", base.uid, field, id(field_type), id(owner))

    @property
    def base(self) -> AccessPath:
        return self._base

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return (
            isinstance(other, Qualify)
            and other.field == self.field
            and other._base == self._base
        )

    def __hash__(self) -> int:
        return hash(("qualify", self.field, self._base))

    def __str__(self) -> str:
        return "{}.{}".format(self._base, self.field)


class Deref(AccessPath):
    """``p^`` — pointer dereference."""

    __slots__ = ("_base",)

    def __init__(self, base: AccessPath, target_type: Type):
        super().__init__(target_type)
        self._base = base

    @staticmethod
    def _intern_key(base: AccessPath, target_type: Type):
        return ("deref", base.uid, id(target_type))

    @property
    def base(self) -> AccessPath:
        return self._base

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return isinstance(other, Deref) and other._base == self._base

    def __hash__(self) -> int:
        return hash(("deref", self._base))

    def __str__(self) -> str:
        return "{}^".format(self._base)


class Subscript(AccessPath):
    """``p[i]`` — array subscript with a lexical index term."""

    __slots__ = ("_base", "index")

    def __init__(self, base: AccessPath, index: IndexTerm, element_type: Type):
        super().__init__(element_type)
        self._base = base
        self.index = index

    @staticmethod
    def _intern_key(base: AccessPath, index: IndexTerm, element_type: Type):
        if isinstance(index, ConstIndex):
            ikey = ("c", index.value)
        elif isinstance(index, VarIndex):
            ikey = ("v", index.symbol.uid)
        else:
            return None  # UnknownIndex: generative by design
        return ("subscript", base.uid, ikey, id(element_type))

    @property
    def base(self) -> AccessPath:
        return self._base

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return (
            isinstance(other, Subscript)
            and other.index == self.index
            and other._base == self._base
        )

    def __hash__(self) -> int:
        return hash(("subscript", self.index, self._base))

    def __str__(self) -> str:
        return "{}[{}]".format(self._base, self.index)


APIndex = Union[ConstIndex, VarIndex, UnknownIndex]


#: The fixed marker every subscript index canonicalises to.
_STRIPPED_INDEX = ConstIndex(0)


def strip_index(ap: AccessPath) -> AccessPath:
    """Return *ap* with every subscript index replaced by a fixed marker.

    The alias analyses ignore subscripts (Table 2, case 6); canonicalising
    indices lets them use identity-based pair caching.  The result is
    memoised on the node, and a canonical node is its own fixpoint, so
    repeated canonicalisation of the same (interned) path is O(1).
    """
    cached = ap._stripped
    if cached is not None:
        return cached
    if isinstance(ap, (VarRoot, FreshRoot)):
        stripped = ap
    elif isinstance(ap, Qualify):
        stripped = Qualify(strip_index(ap.base), ap.field, ap.type, ap.owner)
    elif isinstance(ap, Deref):
        stripped = Deref(strip_index(ap.base), ap.type)
    elif isinstance(ap, Subscript):
        stripped = Subscript(strip_index(ap.base), _STRIPPED_INDEX, ap.type)
    else:
        raise TypeError("not an access path: {!r}".format(ap))
    stripped._stripped = stripped
    ap._stripped = stripped
    return stripped
