"""AST → IR lowering.

Turns each checked procedure into a :class:`~repro.ir.cfg.ProcIR` of basic
blocks.  The lowering makes the memory behaviour of MiniM3 explicit:

* every heap access carries its lexical access path;
* open-array subscripts emit the *implicit* dope-vector loads
  (``LoadDopeData``/``LoadDopeCount``) that the paper's Figure 10 calls
  "Encapsulation" — invisible to the AST-level optimizer, visible to the
  limit study;
* VAR parameters and location-binding WITH statements produce *location
  handles* (Addr* instructions); reads/writes through them are
  ``LoadInd``/``StoreInd`` with ``Deref`` APs, matching how TBAA treats
  address-taken locations;
* short-circuit AND/OR, FOR, CASE and REPEAT are lowered to plain CFG
  edges, so the analyses see only blocks, branches and loops.
"""

from typing import List, Optional, Tuple

from repro.ir import instructions as ins
from repro.ir.access_path import (
    AccessPath,
    ConstIndex,
    Deref,
    FreshRoot,
    IndexTerm,
    Qualify,
    Subscript,
    UnknownIndex,
    VarIndex,
    VarRoot,
)
from repro.ir.cfg import BasicBlock, ProcIR, ProgramIR
from repro.lang import ast_nodes as ast
from repro.lang import types as ty
from repro.lang.errors import CompileError
from repro.lang.symtab import Symbol
from repro.lang.typecheck import CheckedModule, CheckedProc, MAIN_PROC


class LoweringError(CompileError):
    """Internal inconsistency between checker and lowerer."""


def lower_module(checked: CheckedModule) -> ProgramIR:
    """Lower every procedure (incl. the module body) of *checked*."""
    from repro.obs import core as obs

    with obs.span("ir.lower", module=checked.name):
        program = ProgramIR(checked)
        for proc in checked.user_procs():
            program.add_proc(_ProcLowerer(checked, proc).lower())
        return program


def lower_program(source: str, unit: str = "<input>") -> ProgramIR:
    """Convenience: parse, check and lower MiniM3 source text."""
    from repro.lang.parser import parse_module
    from repro.lang.typecheck import check_module

    return lower_module(check_module(parse_module(source, unit)))


class _ProcLowerer:
    """Lowers one procedure body."""

    def __init__(self, checked_module: CheckedModule, checked_proc: CheckedProc):
        self.module = checked_module
        self.checked = checked_proc
        entry = BasicBlock("{}.entry".format(checked_proc.name))
        self.proc = ProcIR(checked_proc.name, checked_proc, entry)
        self.block = entry
        self.loop_exits: List[BasicBlock] = []
        self._shadow_serial = 0

    # ------------------------------------------------------------------
    # Plumbing

    def emit(self, instr: ins.Instr) -> ins.Instr:
        self.block.append(instr)
        return instr

    def temp(self) -> ins.Temp:
        return self.proc.new_temp()

    def new_block(self, hint: str = "") -> BasicBlock:
        return BasicBlock("{}.{}{}".format(self.proc.name, hint, BasicBlock._labels.__next__()))

    def goto(self, block: BasicBlock) -> None:
        """Terminate the current block with a jump and continue in *block*."""
        if not self.block.is_terminated:
            self.block.terminate(ins.Jump(block))
        self.block = block

    def branch(self, cond: ins.Temp, if_true: BasicBlock, if_false: BasicBlock) -> None:
        if not self.block.is_terminated:
            self.block.terminate(ins.Branch(cond, if_true, if_false))

    def shadow_var(self, hint: str, var_type: ty.Type) -> Symbol:
        """A compiler-invented local (register class, never memory)."""
        self._shadow_serial += 1
        symbol = Symbol(
            "<{}.{}>".format(hint, self._shadow_serial),
            "var",
            var_type,
            self.checked.loc,
            proc_name=self.proc.name,
        )
        self.proc.shadow_symbols.append(symbol)
        return symbol

    # ------------------------------------------------------------------
    # Top level

    def lower(self) -> ProcIR:
        if self.checked.name == MAIN_PROC:
            self._lower_global_inits()
        self._lower_local_inits()
        self.lower_stmts(self.checked.body)
        if not self.block.is_terminated:
            self.block.terminate(ins.Return(None))
        return self.proc

    def _lower_global_inits(self) -> None:
        for decl in self.module.module.var_decls:
            if decl.init is None:
                continue
            value = self.lower_expr(decl.init)
            for name in decl.names:
                symbol = self._global_symbol(name)
                self.emit(ins.StoreVar(symbol, value, decl.loc))

    def _global_symbol(self, name: str) -> Symbol:
        for symbol in self.module.globals:
            if symbol.name == name:
                return symbol
        raise LoweringError("unknown global '{}'".format(name))

    def _lower_local_inits(self) -> None:
        decl = self.checked.decl
        if decl is None:
            return
        by_name = {s.name: s for s in self.checked.locals}
        for vdecl in decl.local_vars:
            if vdecl.init is None:
                continue
            value = self.lower_expr(vdecl.init)
            for name in vdecl.names:
                self.emit(ins.StoreVar(by_name[name], value, vdecl.loc))

    # ------------------------------------------------------------------
    # Statements

    def lower_stmts(self, stmts: List[ast.Stmt]) -> None:
        for stmt in stmts:
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.AssignStmt):
            value = self.lower_expr(stmt.value)
            self.write_designator(stmt.target, value)
        elif isinstance(stmt, ast.CallStmt):
            self.lower_call(stmt.call, want_result=False)
        elif isinstance(stmt, ast.EvalStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.RepeatStmt):
            self._lower_repeat(stmt)
        elif isinstance(stmt, ast.LoopStmt):
            self._lower_loop(stmt)
        elif isinstance(stmt, ast.ExitStmt):
            if not self.loop_exits:
                raise LoweringError("EXIT outside loop survived checking")
            self.goto_dead_after(ins.Jump(self.loop_exits[-1], stmt.loc))
        elif isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            value = self.lower_expr(stmt.value) if stmt.value is not None else None
            self.goto_dead_after(ins.Return(value, stmt.loc))
        elif isinstance(stmt, ast.WithStmt):
            self._lower_with(stmt)
        elif isinstance(stmt, ast.CaseStmt):
            self._lower_case(stmt)
        else:
            raise LoweringError("unsupported statement {!r}".format(stmt))

    def goto_dead_after(self, terminator: ins.Instr) -> None:
        """Terminate with *terminator*; continue in an unreachable block."""
        if not self.block.is_terminated:
            self.block.terminate(terminator)
        self.block = self.new_block("dead")

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        join = self.new_block("join")
        for cond, body in stmt.arms:
            cond_temp = self.lower_expr(cond)
            then_block = self.new_block("then")
            else_block = self.new_block("else")
            self.branch(cond_temp, then_block, else_block)
            self.block = then_block
            self.lower_stmts(body)
            self.goto(join)
            self.block = else_block
        self.lower_stmts(stmt.else_body)
        self.goto(join)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        header = self.new_block("while")
        body = self.new_block("body")
        exit_block = self.new_block("exit")
        self.goto(header)
        cond = self.lower_expr(stmt.cond)
        self.branch(cond, body, exit_block)
        self.block = body
        self.loop_exits.append(exit_block)
        self.lower_stmts(stmt.body)
        self.loop_exits.pop()
        self.goto(header)
        self.block = exit_block

    def _lower_repeat(self, stmt: ast.RepeatStmt) -> None:
        body = self.new_block("repeat")
        exit_block = self.new_block("exit")
        self.goto(body)
        self.loop_exits.append(exit_block)
        self.lower_stmts(stmt.body)
        self.loop_exits.pop()
        cond = self.lower_expr(stmt.until)
        self.branch(cond, exit_block, body)
        self.block = exit_block

    def _lower_loop(self, stmt: ast.LoopStmt) -> None:
        body = self.new_block("loop")
        exit_block = self.new_block("exit")
        self.goto(body)
        self.loop_exits.append(exit_block)
        self.lower_stmts(stmt.body)
        self.loop_exits.pop()
        self.goto(body)
        self.block = exit_block

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        symbol: Symbol = getattr(stmt, "symbol")
        by_value: int = getattr(stmt, "by_value", 1)
        lo = self.lower_expr(stmt.lo)
        self.emit(ins.StoreVar(symbol, lo, stmt.loc))
        hi = self.lower_expr(stmt.hi)
        hi_shadow = self.shadow_var("for_hi", ty.INTEGER)
        self.emit(ins.StoreVar(hi_shadow, hi, stmt.loc))

        header = self.new_block("for")
        body = self.new_block("body")
        exit_block = self.new_block("exit")
        self.goto(header)
        t_i = self.temp()
        self.emit(ins.LoadVar(t_i, symbol, stmt.loc))
        t_hi = self.temp()
        self.emit(ins.LoadVar(t_hi, hi_shadow, stmt.loc))
        t_cond = self.temp()
        op = "<=" if by_value > 0 else ">="
        self.emit(ins.BinOp(t_cond, op, t_i, t_hi, stmt.loc))
        self.branch(t_cond, body, exit_block)

        self.block = body
        self.loop_exits.append(exit_block)
        self.lower_stmts(stmt.body)
        self.loop_exits.pop()
        # increment
        t_cur = self.temp()
        self.emit(ins.LoadVar(t_cur, symbol, stmt.loc))
        t_by = self.temp()
        self.emit(ins.ConstInstr(t_by, by_value, stmt.loc))
        t_next = self.temp()
        self.emit(ins.BinOp(t_next, "+", t_cur, t_by, stmt.loc))
        self.emit(ins.StoreVar(symbol, t_next, stmt.loc))
        self.goto(header)
        self.block = exit_block

    def _lower_with(self, stmt: ast.WithStmt) -> None:
        for binding in stmt.bindings:
            symbol: Symbol = getattr(binding, "symbol")
            if binding.binds_location:
                handle = self.address_of(binding.expr)
                self.emit(ins.StoreVar(symbol, handle, binding.loc))
                self.proc.handle_targets[symbol] = self._var_arg_info(binding.expr)
            else:
                value = self.lower_expr(binding.expr)
                self.emit(ins.StoreVar(symbol, value, binding.loc))
        self.lower_stmts(stmt.body)

    def _lower_case(self, stmt: ast.CaseStmt) -> None:
        selector = self.lower_expr(stmt.selector)
        sel_shadow = self.shadow_var("case_sel", stmt.selector.type or ty.INTEGER)
        self.emit(ins.StoreVar(sel_shadow, selector, stmt.loc))
        join = self.new_block("join")
        for arm in stmt.arms:
            arm_block = self.new_block("arm")
            next_test = self.new_block("test")
            matched = self._case_match(sel_shadow, arm.labels)
            self.branch(matched, arm_block, next_test)
            self.block = arm_block
            self.lower_stmts(arm.body)
            self.goto(join)
            self.block = next_test
        self.lower_stmts(stmt.else_body)
        self.goto(join)

    def _case_match(self, sel_shadow: Symbol, labels: List[ast.Expr]) -> ins.Temp:
        """OR together equality tests of the selector against each label."""
        result: Optional[ins.Temp] = None
        for label in labels:
            t_sel = self.temp()
            self.emit(ins.LoadVar(t_sel, sel_shadow, label.loc))
            t_lab = self.temp()
            self.emit(ins.ConstInstr(t_lab, getattr(label, "const_value"), label.loc))
            t_eq = self.temp()
            self.emit(ins.BinOp(t_eq, "=", t_sel, t_lab, label.loc))
            if result is None:
                result = t_eq
            else:
                t_or = self.temp()
                self.emit(ins.BinOp(t_or, "OR", result, t_eq, label.loc))
                result = t_or
        assert result is not None
        return result

    # ------------------------------------------------------------------
    # Expressions

    def lower_expr(self, expr: ast.Expr) -> ins.Temp:
        if isinstance(expr, ast.IntLit):
            return self._const(expr.value, expr)
        if isinstance(expr, ast.BoolLit):
            return self._const(expr.value, expr)
        if isinstance(expr, ast.CharLit):
            return self._const(expr.value, expr)
        if isinstance(expr, ast.TextLit):
            return self._const(expr.value, expr)
        if isinstance(expr, ast.NilLit):
            return self._const(None, expr)
        if isinstance(expr, (ast.NameRef, ast.FieldRef, ast.DerefExpr, ast.IndexExpr)):
            temp, _ = self.read_designator(expr)
            return temp
        if isinstance(expr, ast.CallExpr):
            result = self.lower_call(expr, want_result=True)
            assert result is not None
            return result
        if isinstance(expr, ast.NewExpr):
            return self._lower_new(expr)
        if isinstance(expr, ast.BinaryExpr):
            return self._lower_binary(expr)
        if isinstance(expr, ast.UnaryExpr):
            op = {"-": "neg", "NOT": "not"}[expr.op]
            operand = self.lower_expr(expr.operand)
            dest = self.temp()
            self.emit(ins.UnOp(dest, op, operand, expr.loc))
            return dest
        if isinstance(expr, ast.IsTypeExpr):
            src = self.lower_expr(expr.operand)
            dest = self.temp()
            assert isinstance(expr.target_type, ty.ObjectType)
            self.emit(ins.TypeTest(dest, src, expr.target_type, expr.loc))
            return dest
        if isinstance(expr, ast.NarrowExpr):
            src = self.lower_expr(expr.operand)
            dest = self.temp()
            assert isinstance(expr.target_type, ty.ObjectType)
            self.emit(ins.NarrowChk(dest, src, expr.target_type, expr.loc))
            return dest
        raise LoweringError("unsupported expression {!r}".format(expr))

    def _const(self, value: object, expr: ast.Expr) -> ins.Temp:
        dest = self.temp()
        self.emit(ins.ConstInstr(dest, value, expr.loc))
        return dest

    def _lower_binary(self, expr: ast.BinaryExpr) -> ins.Temp:
        if expr.op in ("AND", "OR"):
            return self._lower_short_circuit(expr)
        if expr.op == "&":
            left = self.lower_expr(expr.left)
            right = self.lower_expr(expr.right)
            dest = self.temp()
            self.emit(ins.Builtin(dest, "TextCat", [left, right], expr.loc))
            return dest
        left = self.lower_expr(expr.left)
        right = self.lower_expr(expr.right)
        dest = self.temp()
        self.emit(ins.BinOp(dest, expr.op, left, right, expr.loc))
        return dest

    def _lower_short_circuit(self, expr: ast.BinaryExpr) -> ins.Temp:
        result = self.temp()
        left = self.lower_expr(expr.left)
        rhs_block = self.new_block("sc_rhs")
        fix_block = self.new_block("sc_fix")
        join = self.new_block("sc_join")
        if expr.op == "AND":
            self.branch(left, rhs_block, fix_block)
            fixed_value = False
        else:
            self.branch(left, fix_block, rhs_block)
            fixed_value = True
        self.block = rhs_block
        right = self.lower_expr(expr.right)
        self.emit(ins.Move(result, right, expr.loc))
        self.goto(join)
        self.block = fix_block
        self.emit(ins.ConstInstr(result, fixed_value, expr.loc))
        self.goto(join)
        self.block = join
        return result

    # ------------------------------------------------------------------
    # Designators: read / write / address-of

    def read_designator(self, expr: ast.Expr) -> Tuple[ins.Temp, AccessPath]:
        """Lower a read of *expr*; returns (value temp, lexical AP)."""
        if isinstance(expr, ast.NameRef):
            symbol: Symbol = getattr(expr, "symbol")
            if symbol.kind == "const":
                return self._const(symbol.const_value, expr), FreshRoot(symbol.type or ty.INTEGER)
            if self._is_handle(symbol):
                handle = self.temp()
                self.emit(ins.LoadVar(handle, symbol, expr.loc))
                ap = Deref(VarRoot(symbol), symbol.type or ty.INTEGER)
                dest = self.temp()
                self.emit(ins.LoadInd(dest, handle, ap, expr.loc))
                return dest, ap
            dest = self.temp()
            self.emit(ins.LoadVar(dest, symbol, expr.loc))
            return dest, VarRoot(symbol)

        if isinstance(expr, ast.FieldRef):
            base_temp, base_ap, owner = self._lower_field_base(expr)
            assert expr.type is not None
            ap = Qualify(base_ap, expr.field_name, expr.type, owner)
            dest = self.temp()
            self.emit(ins.LoadField(dest, base_temp, expr.field_name, ap, expr.loc))
            return dest, ap

        if isinstance(expr, ast.DerefExpr):
            ptr_temp, ptr_ap = self.path_of_value(expr.pointer)
            assert expr.type is not None
            ap = Deref(ptr_ap, expr.type)
            if isinstance(expr.type, (ty.RecordType, ty.ArrayType)):
                raise LoweringError("aggregate deref read survived checking")
            dest = self.temp()
            self.emit(ins.LoadInd(dest, ptr_temp, ap, expr.loc))
            return dest, ap

        if isinstance(expr, ast.IndexExpr):
            array_temp, elem_ap, index_temp = self._lower_subscript(expr)
            dest = self.temp()
            self.emit(ins.LoadElem(dest, array_temp, index_temp, elem_ap, expr.loc))
            return dest, elem_ap

        raise LoweringError("not a designator: {!r}".format(expr))

    def write_designator(self, expr: ast.Expr, src: ins.Temp) -> None:
        """Lower a write of *src* into the location denoted by *expr*."""
        if isinstance(expr, ast.NameRef):
            symbol: Symbol = getattr(expr, "symbol")
            if self._is_handle(symbol):
                handle = self.temp()
                self.emit(ins.LoadVar(handle, symbol, expr.loc))
                ap = Deref(VarRoot(symbol), symbol.type or ty.INTEGER)
                self.emit(ins.StoreInd(handle, src, ap, expr.loc))
            else:
                self.emit(ins.StoreVar(symbol, src, expr.loc))
            return
        if isinstance(expr, ast.FieldRef):
            base_temp, base_ap, owner = self._lower_field_base(expr)
            assert expr.type is not None
            ap = Qualify(base_ap, expr.field_name, expr.type, owner)
            self.emit(ins.StoreField(base_temp, expr.field_name, src, ap, expr.loc))
            return
        if isinstance(expr, ast.DerefExpr):
            ptr_temp, ptr_ap = self.path_of_value(expr.pointer)
            assert expr.type is not None
            ap = Deref(ptr_ap, expr.type)
            self.emit(ins.StoreInd(ptr_temp, src, ap, expr.loc))
            return
        if isinstance(expr, ast.IndexExpr):
            array_temp, elem_ap, index_temp = self._lower_subscript(expr)
            self.emit(ins.StoreElem(array_temp, index_temp, src, elem_ap, expr.loc))
            return
        raise LoweringError("not a designator: {!r}".format(expr))

    def address_of(self, expr: ast.Expr) -> ins.Temp:
        """Lower &expr — a location handle for VAR arguments and WITH."""
        if isinstance(expr, ast.NameRef):
            symbol: Symbol = getattr(expr, "symbol")
            if self._is_handle(symbol):
                # Re-lend the handle we were given.
                dest = self.temp()
                self.emit(ins.LoadVar(dest, symbol, expr.loc))
                return dest
            dest = self.temp()
            self.emit(ins.AddrVar(dest, symbol, expr.loc))
            return dest
        if isinstance(expr, ast.FieldRef):
            base_temp, base_ap, owner = self._lower_field_base(expr)
            assert expr.type is not None
            ap = Qualify(base_ap, expr.field_name, expr.type, owner)
            dest = self.temp()
            self.emit(ins.AddrField(dest, base_temp, expr.field_name, ap, expr.loc))
            return dest
        if isinstance(expr, ast.IndexExpr):
            array_temp, elem_ap, index_temp = self._lower_subscript(expr)
            dest = self.temp()
            self.emit(ins.AddrElem(dest, array_temp, index_temp, elem_ap, expr.loc))
            return dest
        if isinstance(expr, ast.DerefExpr):
            # &p^ is p itself: a scalar REF cell doubles as a handle.
            return self.lower_expr(expr.pointer)
        raise LoweringError("cannot take the address of {!r}".format(expr))

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _is_handle(symbol: Symbol) -> bool:
        return symbol.by_reference or (
            symbol.kind == "with" and symbol.binds_location
        )

    def path_of_value(self, expr: ast.Expr) -> Tuple[ins.Temp, AccessPath]:
        """Value + AP of an expression used as the base of a longer path.

        Designators keep their lexical AP; any other expression roots the
        path at an anonymous :class:`FreshRoot`.
        """
        if isinstance(expr, (ast.NameRef, ast.FieldRef, ast.DerefExpr, ast.IndexExpr)):
            return self.read_designator(expr)
        temp = self.lower_expr(expr)
        assert expr.type is not None
        return temp, FreshRoot(expr.type)

    def _lower_field_base(
        self, expr: ast.FieldRef
    ) -> Tuple[ins.Temp, AccessPath, Optional[ty.ObjectType]]:
        """Base temp + base AP + declaring type for a field access.

        ``o.f`` on an object: the base value is the object reference.
        ``r^.f`` on a REF RECORD: the record is not first-class, so the
        base value is the *pointer* r and the AP gains the Deref level.
        """
        obj = expr.obj
        obj_type = obj.type
        if isinstance(obj_type, ty.ObjectType):
            base_temp, base_ap = self.path_of_value(obj)
            owner = obj_type.field_owner(expr.field_name)
            return base_temp, base_ap, owner
        if isinstance(obj_type, ty.RecordType):
            if not isinstance(obj, ast.DerefExpr):
                raise LoweringError("record value outside a dereference")
            ptr_temp, ptr_ap = self.path_of_value(obj.pointer)
            return ptr_temp, Deref(ptr_ap, obj_type), None
        raise LoweringError("field access on {}".format(obj_type))

    def _lower_subscript(
        self, expr: ast.IndexExpr
    ) -> Tuple[ins.Temp, AccessPath, ins.Temp]:
        """Base array temp + element AP + index temp for ``a^[i]``.

        Open arrays insert the implicit dope-vector data load.
        """
        arr = expr.array
        if not isinstance(arr, ast.DerefExpr):
            raise LoweringError("array value outside a dereference")
        arr_type = arr.type
        assert isinstance(arr_type, ty.ArrayType)
        ptr_temp, ptr_ap = self.path_of_value(arr.pointer)
        arr_ap = Deref(ptr_ap, arr_type)
        index_term = self._index_term(expr.index)
        index_temp = self.lower_expr(expr.index)
        assert expr.type is not None
        elem_ap = Subscript(arr_ap, index_term, expr.type)
        if arr_type.is_open:
            data_ap = Qualify(arr_ap, "$data", arr_type, None)
            data_temp = self.temp()
            self.emit(ins.LoadDopeData(data_temp, ptr_temp, data_ap, expr.loc))
            return data_temp, elem_ap, index_temp
        return ptr_temp, elem_ap, index_temp

    def _index_term(self, expr: ast.Expr) -> IndexTerm:
        if isinstance(expr, ast.IntLit):
            return ConstIndex(expr.value)
        if isinstance(expr, ast.NameRef):
            symbol: Symbol = getattr(expr, "symbol")
            if symbol.kind == "const" and isinstance(symbol.const_value, int):
                return ConstIndex(symbol.const_value)
            if symbol.kind in ("var", "param", "for", "with") and not self._is_handle(symbol):
                return VarIndex(symbol)
        return UnknownIndex()

    # ------------------------------------------------------------------
    # Calls, builtins, NEW

    def lower_call(self, call: ast.CallExpr, want_result: bool) -> Optional[ins.Temp]:
        if call.call_kind == "builtin":
            return self._lower_builtin(call, want_result)
        if call.call_kind == "method":
            return self._lower_method_call(call, want_result)
        if call.call_kind == "proc":
            return self._lower_proc_call(call, want_result)
        raise LoweringError("call kind missing after checking")

    def _lower_proc_call(self, call: ast.CallExpr, want_result: bool) -> Optional[ins.Temp]:
        assert isinstance(call.callee, ast.NameRef)
        proc_sym: Symbol = getattr(call.callee, "symbol")
        proc_type = proc_sym.type
        assert isinstance(proc_type, ty.ProcType)
        args, var_args = self._lower_args(call.args, proc_type.params)
        dest = self.temp() if proc_type.result is not None else None
        instr = ins.Call(dest, proc_sym.name, args, call.loc)
        setattr(instr, "var_args", var_args)
        self.emit(instr)
        return dest

    def _lower_method_call(self, call: ast.CallExpr, want_result: bool) -> Optional[ins.Temp]:
        assert isinstance(call.callee, ast.FieldRef)
        receiver = self.lower_expr(call.callee.obj)
        method: ty.Method = getattr(call, "method")
        static_type: ty.ObjectType = getattr(call, "receiver_type")
        args, var_args = self._lower_args(call.args, method.params)
        dest = self.temp() if method.result is not None else None
        instr = ins.CallMethod(dest, receiver, method.name, args, static_type, call.loc)
        setattr(instr, "var_args", var_args)
        self.emit(instr)
        return dest

    def _lower_args(self, args: List[ast.Expr], params: List[ty.Param]):
        """Lower call arguments.

        Returns (arg temps, var_args) where ``var_args`` maps the index of
        each VAR argument to a description of the location lent to the
        callee: ``('var', symbol)`` for a variable, ``('handle', symbol)``
        for a re-lent handle, ``('heap', ap)`` for a heap location.  The
        mod-ref analysis resolves callee writes-through-parameters with it.
        """
        temps: List[ins.Temp] = []
        var_args = {}
        for position, (arg, param) in enumerate(zip(args, params)):
            if param.mode == "var":
                var_args[position] = self._var_arg_info(arg)
                temps.append(self.address_of(arg))
            else:
                temps.append(self.lower_expr(arg))
        return temps, var_args

    def _var_arg_info(self, arg: ast.Expr):
        from repro.ir.access_path import strip_index

        if isinstance(arg, ast.NameRef):
            symbol: Symbol = getattr(arg, "symbol")
            if self._is_handle(symbol):
                return ("handle", symbol)
            return ("var", symbol)
        ap = self._designator_ap(arg)
        return ("heap", strip_index(ap))

    def _designator_ap(self, expr: ast.Expr) -> AccessPath:
        """The lexical AP a designator denotes (no code emitted)."""
        if isinstance(expr, ast.NameRef):
            symbol: Symbol = getattr(expr, "symbol")
            if self._is_handle(symbol):
                return Deref(VarRoot(symbol), symbol.type or ty.INTEGER)
            return VarRoot(symbol)
        if isinstance(expr, ast.FieldRef):
            obj = expr.obj
            assert expr.type is not None
            if isinstance(obj.type, ty.ObjectType):
                base_ap = self._base_ap(obj)
                owner = obj.type.field_owner(expr.field_name)
                return Qualify(base_ap, expr.field_name, expr.type, owner)
            assert isinstance(obj, ast.DerefExpr)
            ptr_ap = self._base_ap(obj.pointer)
            assert obj.type is not None
            return Qualify(Deref(ptr_ap, obj.type), expr.field_name, expr.type, None)
        if isinstance(expr, ast.DerefExpr):
            assert expr.type is not None
            return Deref(self._base_ap(expr.pointer), expr.type)
        if isinstance(expr, ast.IndexExpr):
            arr = expr.array
            assert isinstance(arr, ast.DerefExpr) and arr.type is not None
            arr_ap = Deref(self._base_ap(arr.pointer), arr.type)
            assert expr.type is not None
            return Subscript(arr_ap, self._index_term(expr.index), expr.type)
        raise LoweringError("not a designator: {!r}".format(expr))

    def _base_ap(self, expr: ast.Expr) -> AccessPath:
        if isinstance(expr, (ast.NameRef, ast.FieldRef, ast.DerefExpr, ast.IndexExpr)):
            return self._designator_ap(expr)
        assert expr.type is not None
        return FreshRoot(expr.type)

    def _lower_builtin(self, call: ast.CallExpr, want_result: bool) -> Optional[ins.Temp]:
        name = call.builtin_name
        args = call.args
        if name == "NUMBER":
            return self._lower_number(call)
        if name in ("INC", "DEC"):
            self._lower_incdec(call)
            return None
        if name == "VAL":
            operand = self.lower_expr(args[0])
            dest = self.temp()
            self.emit(ins.Builtin(dest, "VAL", [operand], call.loc))
            return dest
        temps = [self.lower_expr(a) for a in args]
        from repro.lang.typecheck import _BUILTIN_RESULTS

        has_result = _BUILTIN_RESULTS[name] is not None
        dest = self.temp() if has_result else None
        assert name is not None
        self.emit(ins.Builtin(dest, name, temps, call.loc))
        return dest

    def _lower_number(self, call: ast.CallExpr) -> ins.Temp:
        arr = call.args[0]
        if not isinstance(arr, ast.DerefExpr):
            raise LoweringError("NUMBER argument must be a dereferenced array")
        arr_type = arr.type
        assert isinstance(arr_type, ty.ArrayType)
        if not arr_type.is_open:
            assert arr_type.length is not None
            return self._const(arr_type.length, call)
        ptr_temp, ptr_ap = self.path_of_value(arr.pointer)
        count_ap = Qualify(Deref(ptr_ap, arr_type), "$count", ty.INTEGER, None)
        dest = self.temp()
        self.emit(ins.LoadDopeCount(dest, ptr_temp, count_ap, call.loc))
        return dest

    def _lower_incdec(self, call: ast.CallExpr) -> None:
        target = call.args[0]
        current, _ = self.read_designator(target)
        if len(call.args) == 2:
            delta = self.lower_expr(call.args[1])
        else:
            delta = self._const(1, call)
        result = self.temp()
        op = "+" if call.builtin_name == "INC" else "-"
        self.emit(ins.BinOp(result, op, current, delta, call.loc))
        self.write_designator(target, result)

    def _lower_new(self, expr: ast.NewExpr) -> ins.Temp:
        new_type: ty.Type = getattr(expr, "allocated_type")
        dest = self.temp()
        if isinstance(new_type, ty.ObjectType):
            self.emit(ins.NewObject(dest, new_type, expr.loc))
            base_ap = FreshRoot(new_type)
            for fname, init in expr.field_inits:
                value = self.lower_expr(init)
                field_type = new_type.field_type(fname)
                assert field_type is not None
                owner = new_type.field_owner(fname)
                ap = Qualify(base_ap, fname, field_type, owner)
                self.emit(ins.StoreField(dest, fname, value, ap, expr.loc))
            return dest
        assert isinstance(new_type, ty.RefType)
        referent = new_type.target
        if isinstance(referent, ty.ArrayType):
            if referent.is_open:
                assert expr.size is not None
                size = self.lower_expr(expr.size)
                self.emit(ins.NewOpenArray(dest, new_type, size, expr.loc))
            else:
                self.emit(ins.NewFixedArray(dest, new_type, expr.loc))
            return dest
        # REF RECORD and scalar REF cells both allocate a record-like cell.
        self.emit(ins.NewRecord(dest, new_type, expr.loc))
        if isinstance(referent, ty.RecordType) and expr.field_inits:
            base_ap = Deref(FreshRoot(new_type), referent)
            for fname, init in expr.field_inits:
                value = self.lower_expr(init)
                field_type = referent.field_type(fname)
                assert field_type is not None
                ap = Qualify(base_ap, fname, field_type, None)
                self.emit(ins.StoreField(dest, fname, value, ap, expr.loc))
        return dest
