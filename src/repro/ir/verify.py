"""IR well-formedness verifier.

Run after lowering and after every optimization pass (the test suite
does) to catch structural corruption early:

* every reachable block has exactly one terminator;
* branch/jump targets are reachable blocks of the same procedure;
* every temp is written before it is read on every path (conservatively:
  checked along the reverse-postorder with merge-intersection, like a
  definite-assignment analysis over registers);
* temp indices are within the procedure's ``n_temps``;
* memory instructions carry access paths;
* the entry block has no predecessors inside the procedure... unless a
  loop legitimately targets it, in which case a preheader split must
  have kept ``proc.entry`` correct (we verify ``proc.entry`` is in the
  block list).
"""

from typing import Dict, List, Set

from repro.ir import instructions as ins
from repro.ir.cfg import BasicBlock, ProcIR, ProgramIR


class IRVerificationError(AssertionError):
    """The IR violates a structural invariant."""


def verify_program(program: ProgramIR) -> None:
    """Verify every procedure; raises IRVerificationError on failure."""
    for proc in program.user_procs():
        verify_proc(proc)


def verify_proc(proc: ProcIR) -> None:
    blocks = proc.blocks()
    block_set = set(map(id, blocks))

    if id(proc.entry) not in block_set:
        raise IRVerificationError(
            "{}: entry block not in reachable set".format(proc.name)
        )

    for block in blocks:
        _verify_block(proc, block, block_set)

    _verify_definite_assignment(proc, blocks)


def _verify_block(proc: ProcIR, block: BasicBlock, block_set: Set[int]) -> None:
    if block.terminator is None:
        raise IRVerificationError(
            "{}: block {} lacks a terminator".format(proc.name, block.name)
        )
    for instr in block.instrs:
        if instr.is_terminator:
            raise IRVerificationError(
                "{}: terminator {} in the middle of {}".format(
                    proc.name, instr, block.name
                )
            )
        _verify_instr(proc, block, instr)
    terminator = block.terminator
    for succ in terminator.successors:  # type: ignore[attr-defined]
        if id(succ) not in block_set:
            raise IRVerificationError(
                "{}: {} targets unknown block {}".format(
                    proc.name, block.name, succ.name
                )
            )


def _verify_instr(proc: ProcIR, block: BasicBlock, instr: ins.Instr) -> None:
    for temp in list(instr.sources) + ([instr.dest] if instr.dest else []):
        if temp.index < 0 or temp.index >= proc.n_temps:
            raise IRVerificationError(
                "{}: temp {} out of range in {} ({})".format(
                    proc.name, temp, block.name, instr
                )
            )
    if (instr.is_heap_load or instr.is_heap_store) and instr.ap is None:
        raise IRVerificationError(
            "{}: memory instruction {} without an access path".format(
                proc.name, instr
            )
        )


def _verify_definite_assignment(proc: ProcIR, blocks: List[BasicBlock]) -> None:
    """Every temp read must be preceded by a write on all paths."""
    full = (1 << proc.n_temps) - 1 if proc.n_temps else 0
    defined_in: Dict[BasicBlock, int] = {b: full for b in blocks}
    defined_in[proc.entry] = 0
    preds = proc.predecessors()

    def block_out(block: BasicBlock, mask: int) -> int:
        for instr in block.all_instrs():
            for src in instr.sources:
                if not (mask >> src.index) & 1:
                    raise IRVerificationError(
                        "{}: {} reads {} before any write in {}".format(
                            proc.name, instr, src, block.name
                        )
                    )
            if instr.dest is not None:
                mask |= 1 << instr.dest.index
        return mask

    # Fixpoint on the definition sets first (reads checked on final pass).
    outs: Dict[BasicBlock, int] = {}
    changed = True
    while changed:
        changed = False
        for block in blocks:
            if block is not proc.entry and preds[block]:
                new_in = full
                for p in preds[block]:
                    new_in &= outs.get(p, full)
                if new_in != defined_in[block]:
                    defined_in[block] = new_in
                    changed = True
            mask = defined_in[block]
            for instr in block.all_instrs():
                if instr.dest is not None:
                    mask |= 1 << instr.dest.index
            if outs.get(block) != mask:
                outs[block] = mask
                changed = True

    for block in blocks:
        block_out(block, defined_in[block])
