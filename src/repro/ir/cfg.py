"""Basic blocks, per-procedure CFGs and the whole-program IR container."""

import itertools
from typing import Dict, Iterator, List, Optional, Set

from repro.ir import instructions as ins
from repro.lang.symtab import Symbol
from repro.lang.typecheck import CheckedModule, CheckedProc, MAIN_PROC


class BasicBlock:
    """A straight-line instruction sequence ending in one terminator."""

    _labels = itertools.count()

    def __init__(self, name: Optional[str] = None):
        self.name = name or "B{}".format(next(BasicBlock._labels))
        self.instrs: List[ins.Instr] = []
        self.terminator: Optional[ins.Instr] = None

    def append(self, instr: ins.Instr) -> ins.Instr:
        assert self.terminator is None, "appending to a terminated block"
        assert not instr.is_terminator
        self.instrs.append(instr)
        return instr

    def terminate(self, instr: ins.Instr) -> None:
        assert self.terminator is None, "block already terminated"
        assert instr.is_terminator
        self.terminator = instr

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        if self.terminator is None:
            return []
        return list(self.terminator.successors)  # type: ignore[attr-defined]

    def all_instrs(self) -> Iterator[ins.Instr]:
        """Body instructions followed by the terminator."""
        yield from self.instrs
        if self.terminator is not None:
            yield self.terminator

    def __repr__(self) -> str:
        return "<BasicBlock {} ({} instrs)>".format(self.name, len(self.instrs))


class ProcIR:
    """The lowered body of one procedure."""

    def __init__(self, name: str, checked: CheckedProc, entry: BasicBlock):
        self.name = name
        self.checked = checked
        self.entry = entry
        self.n_temps = 0
        # Shadow locals invented by optimizations (RLE caches); they are
        # register-class symbols and never count as memory.
        self.shadow_symbols: List[Symbol] = []
        # WITH handles: binding symbol -> ('var', sym) | ('handle', sym) |
        # ('heap', ap), describing the location the handle aliases.  Used
        # by mod-ref and RLE to resolve writes through the handle.
        self.handle_targets: Dict[Symbol, tuple] = {}

    def new_temp(self) -> ins.Temp:
        temp = ins.Temp(self.n_temps)
        self.n_temps += 1
        return temp

    def blocks(self) -> List[BasicBlock]:
        """All reachable blocks in reverse-postorder from the entry."""
        order: List[BasicBlock] = []
        seen: Set[int] = set()

        def visit(block: BasicBlock) -> None:
            if id(block) in seen:
                return
            seen.add(id(block))
            for succ in block.successors():
                visit(succ)
            order.append(block)

        visit(self.entry)
        order.reverse()
        return order

    def predecessors(self) -> Dict[BasicBlock, List[BasicBlock]]:
        preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in self.blocks()}
        for block in preds:
            for succ in block.successors():
                preds[succ].append(block)
        return preds

    def all_instrs(self) -> Iterator[ins.Instr]:
        for block in self.blocks():
            yield from block.all_instrs()

    def heap_loads(self) -> List[ins.Instr]:
        return [i for i in self.all_instrs() if i.is_heap_load]

    def heap_stores(self) -> List[ins.Instr]:
        return [i for i in self.all_instrs() if i.is_heap_store]

    def __repr__(self) -> str:
        return "<ProcIR {} ({} blocks)>".format(self.name, len(self.blocks()))


class ProgramIR:
    """The lowered whole program: all procedures plus front-end results.

    The module body is the procedure named :data:`repro.lang.typecheck.MAIN_PROC`.
    """

    def __init__(self, checked: CheckedModule):
        self.checked = checked
        self.procs: Dict[str, ProcIR] = {}
        self.proc_order: List[str] = []

    def add_proc(self, proc: ProcIR) -> None:
        self.procs[proc.name] = proc
        self.proc_order.append(proc.name)

    @property
    def main(self) -> ProcIR:
        return self.procs[MAIN_PROC]

    def user_procs(self) -> List[ProcIR]:
        return [self.procs[name] for name in self.proc_order]

    def all_instrs(self) -> Iterator[ins.Instr]:
        for proc in self.user_procs():
            yield from proc.all_instrs()

    def __repr__(self) -> str:
        return "<ProgramIR {} ({} procs)>".format(
            self.checked.name, len(self.procs)
        )
