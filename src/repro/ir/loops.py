"""Natural-loop detection.

RLE's loop-invariant load motion (the paper's Figure 6) works on natural
loops: a back edge ``latch -> header`` where ``header`` dominates
``latch``, plus every block that can reach the latch without passing
through the header.
"""

from typing import Dict, List, Set, Tuple

from repro.ir.cfg import BasicBlock, ProcIR
from repro.ir.dominators import DominatorTree


class NaturalLoop:
    """One natural loop: header, latches (back-edge sources), body set."""

    def __init__(self, header: BasicBlock):
        self.header = header
        self.latches: List[BasicBlock] = []
        self.body: Set[BasicBlock] = {header}

    @property
    def blocks(self) -> Set[BasicBlock]:
        return self.body

    def contains(self, block: BasicBlock) -> bool:
        return block in self.body

    def exit_edges(self) -> List[Tuple[BasicBlock, BasicBlock]]:
        """(from_block, to_block) edges leaving the loop."""
        edges = []
        for block in self.body:
            for succ in block.successors():
                if succ not in self.body:
                    edges.append((block, succ))
        return edges

    def __repr__(self) -> str:
        return "<NaturalLoop header={} blocks={}>".format(
            self.header.name, len(self.body)
        )


def find_natural_loops(proc: ProcIR, domtree: DominatorTree) -> List[NaturalLoop]:
    """All natural loops of *proc*; loops sharing a header are merged.

    Returned innermost-first (by body size ascending), the order the
    hoister processes them so inner-loop hoists happen before outer ones.
    """
    preds = proc.predecessors()
    loops: Dict[BasicBlock, NaturalLoop] = {}
    for block in proc.blocks():
        for succ in block.successors():
            if domtree.dominates(succ, block):
                loop = loops.setdefault(succ, NaturalLoop(succ))
                loop.latches.append(block)
                _grow(loop, block, preds)
    return sorted(loops.values(), key=lambda l: len(l.body))


def _grow(
    loop: NaturalLoop,
    latch: BasicBlock,
    preds: Dict[BasicBlock, List[BasicBlock]],
) -> None:
    """Add to *loop* every block reaching *latch* without the header."""
    stack = [latch]
    while stack:
        block = stack.pop()
        if block in loop.body:
            continue
        loop.body.add(block)
        stack.extend(preds.get(block, []))
