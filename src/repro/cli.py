"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``check FILE``   — parse and type-check a MiniM3 module;
* ``ir FILE``      — dump the (optionally optimized) IR;
* ``run FILE``     — execute on the simulated machine, print output/stats;
* ``alias FILE``   — static alias-pair report under each analysis;
* ``limit FILE``   — dynamic redundancy limit study (Figures 9/10 style);
* ``bench NAME``   — run one registered paper benchmark;
* ``tables``       — regenerate the paper's tables/figures (slow).
"""

import argparse
import sys
from typing import List, Optional

from repro import CompileError, compile_program
from repro.analysis import ANALYSIS_NAMES, AliasPairCounter
from repro.ir.printer import format_program
from repro.runtime.limit import Category
from repro.util.tables import render_table


def _load(path: str):
    with open(path) as f:
        source = f.read()
    return compile_program(source, path)


def _optimize(program, args):
    if args.analysis is None and not getattr(args, "minv_inline", False):
        return program.base()
    return program.pipeline.build(
        analysis=args.analysis or "SMFieldTypeRefs",
        rle=args.analysis is not None,
        minv_inline=getattr(args, "minv_inline", False),
        open_world=getattr(args, "open_world", False),
        copyprop=getattr(args, "copyprop", False),
        pre=getattr(args, "pre", False),
    )


# ----------------------------------------------------------------------
# Commands


def cmd_check(args) -> int:
    program = _load(args.file)
    checked = program.checked
    print("module {}: OK".format(checked.name))
    print("  types     : {}".format(len(checked.named_types)))
    print("  objects   : {}".format(len(checked.object_types()) - 1))  # minus ROOT
    print("  globals   : {}".format(len(checked.globals)))
    print("  procedures: {}".format(len(checked.proc_order) - 1))  # minus main
    return 0


def cmd_ir(args) -> int:
    program = _load(args.file)
    result = _optimize(program, args)
    print(format_program(result.program))
    if result.rle is not None:
        print(
            "\n; RLE: {} loads eliminated, {} paths hoisted".format(
                result.rle.eliminated_loads, result.rle.hoisted_paths
            )
        )
    return 0


def cmd_run(args) -> int:
    program = _load(args.file)
    result = _optimize(program, args)
    stats = program.run(result)
    sys.stdout.write(stats.output_text())
    if not stats.output_text().endswith("\n"):
        print()
    if args.stats:
        print("--- execution statistics ---", file=sys.stderr)
        print("instructions : {}".format(stats.instructions), file=sys.stderr)
        print("heap loads   : {}".format(stats.heap_loads), file=sys.stderr)
        print("other loads  : {}".format(stats.other_loads), file=sys.stderr)
        print("heap stores  : {}".format(stats.heap_stores), file=sys.stderr)
        print("calls        : {}".format(stats.calls), file=sys.stderr)
        print("cycles       : {}".format(stats.cycles), file=sys.stderr)
    return 0


def cmd_alias(args) -> int:
    program = _load(args.file)
    base = program.base()
    rows = []
    for name in ANALYSIS_NAMES:
        analysis = program.analysis(name, open_world=args.open_world)
        report = AliasPairCounter(base.program, analysis, engine=args.engine).count()
        rows.append(
            [name, report.references, report.local_pairs, report.global_pairs]
        )
    print(
        render_table(
            ["Analysis", "References", "Local pairs", "Global pairs"],
            rows,
            title="Alias pairs for {}".format(program.name),
        )
    )
    return 0


def cmd_limit(args) -> int:
    program = _load(args.file)
    before = program.limit_study(program.base())
    optimized = program.pipeline.build(analysis=args.analysis or "SMFieldTypeRefs")
    after = program.limit_study(optimized)
    print("heap loads            : {}".format(before.total_heap_loads))
    print("redundant (original)  : {} ({:.1%})".format(
        before.redundant_loads, before.redundant_fraction))
    print("redundant (after RLE) : {} ({:.1%})".format(
        after.redundant_loads, after.redundant_fraction))
    print("residue classification:")
    for category in Category:
        print("  {:14} {}".format(category.value, after.by_category[category]))
    return 0


def cmd_bench(args) -> int:
    from repro.bench import registry
    from repro.bench.suite import BenchmarkSuite, RunConfig

    suite = BenchmarkSuite()
    names = [args.name] if args.name else registry.benchmark_names()
    rows = []
    for name in names:
        base = suite.run(name)
        config = RunConfig(analysis=args.analysis or "SMFieldTypeRefs")
        opt = suite.run(name, config)
        rows.append(
            [
                name,
                base.instructions,
                base.heap_loads,
                opt.heap_loads,
                round(100.0 * opt.cycles / base.cycles, 1),
            ]
        )
    print(
        render_table(
            ["Benchmark", "Instructions", "Heap loads", "After RLE", "% time"],
            rows,
            title="Benchmark summary (RLE[{}])".format(args.analysis or "SMFieldTypeRefs"),
        )
    )
    return 0


def cmd_tables(args) -> int:
    from repro.bench import tables
    from repro.bench.suite import BenchmarkSuite

    suite = BenchmarkSuite()
    generators = {
        "table4": tables.table4,
        "table5": tables.table5,
        "table6": tables.table6,
        "figure8": tables.figure8,
        "figure9": tables.figure9,
        "figure10": tables.figure10,
        "figure11": tables.figure11,
        "figure12": tables.figure12,
    }
    wanted = args.which or list(generators)
    for key in wanted:
        if key not in generators:
            print("unknown table {!r}; known: {}".format(key, sorted(generators)))
            return 2
        generator = generators[key]
        if key == "table5":
            print(generator(suite, engine=args.engine).text)
        else:
            print(generator(suite).text)
        print()
    return 0


# ----------------------------------------------------------------------
# Argument parsing


def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    from repro.analysis.alias_pairs import DEFAULT_ENGINE, ENGINES

    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=DEFAULT_ENGINE,
        help="alias-pair counting engine: the partition-based fast path, "
        "the per-pair reference loop, or differential (both + agreement check)",
    )


def _add_opt_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--analysis",
        choices=ANALYSIS_NAMES,
        default=None,
        help="run RLE under this TBAA level",
    )
    parser.add_argument("--minv-inline", action="store_true",
                        help="devirtualize and inline before RLE")
    parser.add_argument("--open-world", action="store_true",
                        help="assume unavailable code exists (Section 4)")
    parser.add_argument("--copyprop", action="store_true",
                        help="enable the copy-propagation extension")
    parser.add_argument("--pre", action="store_true",
                        help="enable the PRE-of-loads extension")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Type-Based Alias Analysis (PLDI 1998) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="parse and type-check a MiniM3 file")
    p.add_argument("file")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("ir", help="dump (optionally optimized) IR")
    p.add_argument("file")
    _add_opt_flags(p)
    p.set_defaults(func=cmd_ir)

    p = sub.add_parser("run", help="execute on the simulated machine")
    p.add_argument("file")
    p.add_argument("--stats", action="store_true", help="print counters to stderr")
    _add_opt_flags(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("alias", help="static alias-pair report")
    p.add_argument("file")
    p.add_argument("--open-world", action="store_true")
    _add_engine_flag(p)
    p.set_defaults(func=cmd_alias)

    p = sub.add_parser("limit", help="dynamic redundancy limit study")
    p.add_argument("file")
    p.add_argument("--analysis", choices=ANALYSIS_NAMES, default=None)
    p.set_defaults(func=cmd_limit)

    p = sub.add_parser("bench", help="run registered paper benchmarks")
    p.add_argument("name", nargs="?", default=None)
    p.add_argument("--analysis", choices=ANALYSIS_NAMES, default=None)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("tables", help="regenerate the paper's tables/figures")
    p.add_argument("which", nargs="*", default=None,
                   help="e.g. table5 figure8 (default: all)")
    _add_engine_flag(p)
    p.set_defaults(func=cmd_tables)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CompileError as err:
        print("error: {}".format(err), file=sys.stderr)
        return 1
    except FileNotFoundError as err:
        print("error: {}".format(err), file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
