"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``check FILE``   — parse and type-check a MiniM3 module;
* ``ir FILE``      — dump the (optionally optimized) IR;
* ``run FILE``     — execute on the simulated machine, print output/stats;
* ``alias FILE``   — static alias-pair report under each analysis;
* ``limit FILE``   — dynamic redundancy limit study (Figures 9/10 style);
* ``bench [NAME]`` — run registered paper benchmarks, appending a ledger
  record to ``BENCH_history.jsonl``; ``bench compare OLD NEW`` and
  ``bench gate --baseline REF`` run the perf-regression workflow over
  that ledger (see DESIGN.md §6f);
* ``tables``       — regenerate the paper's tables/figures (slow);
* ``fuzz``         — generate seeded programs and cross-check the
  analyses against the soundness oracles (see DESIGN.md §6d); the seed
  range fans out over ``--jobs`` worker processes;
* ``corpus``       — ``gen``/``verify``/``run``/``bench`` over sharded,
  content-hashed corpora of generated programs (see DESIGN.md §6g);
* ``profile``      — phase-time tree + top metric counts for one program
  (a file or a registered benchmark; see DESIGN.md §6e).

``bench`` and ``tables`` isolate faults: one broken benchmark or input
file is reported (as a structured JSON failure entry) without aborting
the others, and the exit code reflects the aggregate outcome.

Cross-cutting flags: ``-q``/``-v`` before the command select the logging
level (:mod:`repro.obs.log`); ``--trace FILE.jsonl`` on the analysis
commands enables the span recorder and writes a schema-pinned JSONL
trace on exit (:mod:`repro.obs.trace`).
"""

import argparse
import json
import sys
import time
from typing import List, Optional

from repro import CompileError, compile_program
from repro.analysis import ANALYSIS_NAMES, AliasPairCounter
from repro.ir.printer import format_program
from repro.lang.errors import ResourceLimitError
from repro.obs import core as obs
from repro.obs import log
from repro.obs.sampler import DEFAULT_SAMPLE_RATE as SERVE_SAMPLE_RATE
from repro.runtime.limit import Category
from repro.util.tables import render_table


def _load(path: str):
    with open(path) as f:
        source = f.read()
    return compile_program(source, path)


def _failure_entry(name: str, phase: str, exc: BaseException,
                   seconds: Optional[float] = None) -> dict:
    """One machine-readable failure record for batch commands.

    ``seconds`` is the wall clock the failed unit burned before its
    bulkhead caught it, so failure timing is never lost.
    """
    entry = {
        "name": name,
        "phase": phase,
        "error": type(exc).__name__,
        "message": str(exc),
    }
    if seconds is not None:
        entry["seconds"] = round(seconds, 3)
    return entry


def _emit_failures(failures: List[dict]) -> None:
    """Print the aggregate failure report (JSON, one parseable block)."""
    if failures:
        log.error("--- failures ---")
        log.error(json.dumps(failures, indent=2, sort_keys=True))


def _optimize(program, args):
    if args.analysis is None and not getattr(args, "minv_inline", False):
        return program.base()
    return program.pipeline.build(
        analysis=args.analysis or "SMFieldTypeRefs",
        rle=args.analysis is not None,
        minv_inline=getattr(args, "minv_inline", False),
        open_world=getattr(args, "open_world", False),
        copyprop=getattr(args, "copyprop", False),
        pre=getattr(args, "pre", False),
    )


# ----------------------------------------------------------------------
# Commands


def cmd_check(args) -> int:
    with open(args.file) as f:
        source = f.read()
    try:
        program = compile_program(source, args.file)
    except CompileError as err:
        # Render with the offending source line and a caret.
        log.error("error: {}".format(err.render(source)))
        return 1
    checked = program.checked
    print("module {}: OK".format(checked.name))
    print("  types     : {}".format(len(checked.named_types)))
    print("  objects   : {}".format(len(checked.object_types()) - 1))  # minus ROOT
    print("  globals   : {}".format(len(checked.globals)))
    print("  procedures: {}".format(len(checked.proc_order) - 1))  # minus main
    return 0


def cmd_ir(args) -> int:
    program = _load(args.file)
    result = _optimize(program, args)
    print(format_program(result.program))
    if result.rle is not None:
        print(
            "\n; RLE: {} loads eliminated, {} paths hoisted".format(
                result.rle.eliminated_loads, result.rle.hoisted_paths
            )
        )
    return 0


def cmd_run(args) -> int:
    program = _load(args.file)
    result = _optimize(program, args)
    stats = program.run(result)
    sys.stdout.write(stats.output_text())
    if not stats.output_text().endswith("\n"):
        print()
    if args.stats:
        log.info("--- execution statistics ---")
        log.info("instructions : {}".format(stats.instructions))
        log.info("heap loads   : {}".format(stats.heap_loads))
        log.info("other loads  : {}".format(stats.other_loads))
        log.info("heap stores  : {}".format(stats.heap_stores))
        log.info("calls        : {}".format(stats.calls))
        log.info("cycles       : {}".format(stats.cycles))
    return 0


def cmd_alias(args) -> int:
    program = _load(args.file)
    base = program.base()
    rows = []
    for name in ANALYSIS_NAMES:
        analysis = program.analysis(name, open_world=args.open_world)
        report = AliasPairCounter(base.program, analysis, engine=args.engine).count()
        rows.append(
            [name, report.references, report.local_pairs, report.global_pairs]
        )
    print(
        render_table(
            ["Analysis", "References", "Local pairs", "Global pairs"],
            rows,
            title="Alias pairs for {}".format(program.name),
        )
    )
    return 0


def cmd_limit(args) -> int:
    program = _load(args.file)
    before = program.limit_study(program.base())
    optimized = program.pipeline.build(analysis=args.analysis or "SMFieldTypeRefs")
    after = program.limit_study(optimized)
    print("heap loads            : {}".format(before.total_heap_loads))
    print("redundant (original)  : {} ({:.1%})".format(
        before.redundant_loads, before.redundant_fraction))
    print("redundant (after RLE) : {} ({:.1%})".format(
        after.redundant_loads, after.redundant_fraction))
    print("residue classification:")
    for category in Category:
        print("  {:14} {}".format(category.value, after.by_category[category]))
    return 0


def cmd_bench(args) -> int:
    """Dispatch ``repro bench [NAME] | compare OLD NEW | gate``."""
    positional = list(args.name or [])
    if positional and positional[0] == "compare":
        return _cmd_bench_compare(args, positional[1:])
    if positional and positional[0] == "gate":
        return _cmd_bench_gate(args, positional[1:])
    if positional and positional[0] == "serve":
        return _cmd_bench_serve(args, positional[1:])
    if len(positional) > 1:
        log.error("bench takes at most one benchmark name "
                  "(or a 'compare'/'gate'/'serve' subcommand); got {!r}"
                  .format(positional))
        return 2
    name = positional[0] if positional else None
    recording = _HistoryRecording(enabled=not args.no_history)
    with recording:
        status = _run_bench_suite(args, name)
    recording.append(args.history, label="bench")
    return status


class _HistoryRecording:
    """Span/metric recording scoped to one ledger-producing bench run.

    If ``--trace`` already enabled the recorder in :func:`main`, reuse
    its state (the trace and the ledger record then describe the same
    run); otherwise enable a fresh recorder/registry for the duration
    and restore the disabled state afterwards.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._owns_recorder = False

    def __enter__(self) -> "_HistoryRecording":
        if self.enabled and not obs.enabled():
            from repro.obs import metrics

            obs.reset()
            metrics.registry().reset()
            obs.enable()
            self._owns_recorder = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._owns_recorder:
            obs.disable()
        return False

    def append(self, path: str, label: str,
               extra_phases: Optional[dict] = None) -> Optional[dict]:
        """Collect a ledger record from the recorded run and append it."""
        if not self.enabled:
            return None
        from repro.obs import history

        record = history.collect_record(label, extra_phases=extra_phases)
        history.append_record(path, record)
        log.info("history: appended {} record to {} (sha {})".format(
            label, path, (record["git_sha"] or "unknown")[:12]))
        return record


def _bench_names(args, name: Optional[str]) -> List[str]:
    from repro.bench import registry

    if name:
        return [name]
    if getattr(args, "only", None):
        return [n for n in args.only.split(",") if n]
    return registry.benchmark_names()


def _run_bench_suite(args, name: Optional[str]) -> int:
    from repro.bench.suite import BenchmarkSuite, RunConfig

    suite = BenchmarkSuite()
    names = _bench_names(args, name)
    rows = []
    failures: List[dict] = []
    for name in names:
        # Bulkhead: one broken benchmark must not sink the whole run.
        # Wall clock is taken around the bulkhead so a failing benchmark
        # still reports how long it burned before it died.
        started = time.perf_counter()
        try:
            base = suite.run(name)
            config = RunConfig(analysis=args.analysis or "SMFieldTypeRefs")
            opt = suite.run(name, config)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            failures.append(_failure_entry(
                name, "bench", exc, seconds=time.perf_counter() - started))
            continue
        rows.append(
            [
                name,
                base.instructions,
                base.heap_loads,
                opt.heap_loads,
                round(100.0 * opt.cycles / base.cycles, 1),
                round(time.perf_counter() - started, 3),
            ]
        )
    if rows:
        print(
            render_table(
                ["Benchmark", "Instructions", "Heap loads", "After RLE",
                 "% time", "Wall s"],
                rows,
                title="Benchmark summary (RLE[{}])".format(
                    args.analysis or "SMFieldTypeRefs"
                ),
            )
        )
    _emit_failures(failures)
    return 1 if failures else 0


def _write_comparison(args, report) -> None:
    print(report.render_text())
    if getattr(args, "md", None):
        with open(args.md, "w") as f:
            f.write(report.render_markdown())
        log.info("wrote markdown report: {}".format(args.md))


def _cmd_bench_compare(args, rest: List[str]) -> int:
    """``repro bench compare OLD NEW`` — compare two ledger selections."""
    from repro.obs import history, regress

    if len(rest) != 2:
        log.error("usage: repro bench compare OLD NEW "
                  "(each a ledger file, a git sha/ref, or 'latest')")
        return 2
    try:
        old = history.resolve_selection(rest[0], args.history)
        new = history.resolve_selection(rest[1], args.history)
    except (OSError, ValueError) as err:
        log.error("bench compare: {}".format(err))
        return 2
    report = regress.compare_records(old, new, **_thresholds(args))
    _write_comparison(args, report)
    return 1 if report.has_regressions else 0


def _thresholds(args) -> dict:
    """CLI comparison thresholds, defaulting to the regress constants."""
    from repro.obs import regress

    return {
        "tolerance": (regress.DEFAULT_TOLERANCE if args.tolerance is None
                      else args.tolerance),
        "mad_k": regress.DEFAULT_MAD_K if args.mad_k is None else args.mad_k,
        "min_seconds": (regress.DEFAULT_MIN_SECONDS if args.min_seconds is None
                        else args.min_seconds),
    }


def _cmd_bench_gate(args, rest: List[str]) -> int:
    """``repro bench gate --baseline REF`` — measure HEAD, compare, exit
    nonzero on a noise-banded regression (or on a failed benchmark)."""
    from repro.obs import history, regress

    if rest:
        log.error("bench gate takes no positional arguments; got {!r}"
                  .format(rest))
        return 2
    if args.baseline is None:
        log.error("bench gate requires --baseline "
                  "(a ledger file, a git sha/ref, or 'latest')")
        return 2
    try:
        baseline = history.resolve_selection(args.baseline, args.history)
    except (OSError, ValueError) as err:
        log.error("bench gate: {}".format(err))
        return 2
    from repro.obs import metrics

    repeats = max(1, args.repeats)
    new_records: List[dict] = []
    bench_failed = False
    trace_active = obs.enabled()
    for repeat in range(repeats):
        log.info("gate: measuring repeat {}/{}".format(repeat + 1, repeats))
        # Each repeat needs a fresh recorder segment *and* a fresh suite
        # (the suite memoises runs, which would turn repeat 2 into a
        # zero-cost replay); _run_bench_suite builds its own suite.
        obs.reset()
        metrics.registry().reset()
        obs.enable()
        try:
            if _run_bench_suite(args, None) != 0:
                bench_failed = True
            if args.corpus is not None:
                # The corpus engine benchmark runs inside the measured
                # segment so its corpus.table5.* phases land in the gate
                # record and regress like any benchmark phase.
                from repro.qa.corpus import bench_corpus

                try:
                    bench_corpus(args.corpus, repeats=1,
                                 max_shards=args.corpus_shards)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    log.error("gate: corpus bench failed: {}".format(exc))
                    bench_failed = True
            if args.serve:
                # Same idea for the serving layer: the serve.cold /
                # serve.warm phases land in the gate record, and the
                # warm-vs-cold speedup floor is enforced outright.
                from repro.serve.bench import (
                    DEFAULT_MIN_SPEEDUP,
                    ServeBenchError,
                    check_speedup,
                    run_serve_bench,
                )

                try:
                    serve_result = run_serve_bench(
                        names=([n for n in args.only.split(",") if n]
                               if args.only else None),
                        repeats=1)
                    check_speedup(
                        serve_result,
                        DEFAULT_MIN_SPEEDUP if args.min_speedup is None
                        else args.min_speedup)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except ServeBenchError as exc:
                    log.error("gate: serve bench failed: {}".format(exc))
                    bench_failed = True
                except Exception as exc:
                    log.error("gate: serve bench errored: {}".format(exc))
                    bench_failed = True
        finally:
            if not trace_active:
                obs.disable()
        record = history.collect_record("gate")
        new_records.append(record)
        if not args.no_history:
            history.append_record(args.history, record)
    thresholds = _thresholds(args)
    report = regress.compare_records(baseline, new_records, **thresholds)
    _write_comparison(args, report)
    if bench_failed:
        log.error("gate: benchmark failures (see above)")
        return 1
    if report.has_regressions:
        log.error("gate: {} regression(s) beyond tolerance {:.0%}".format(
            len(report.regressions), thresholds["tolerance"]))
        return 1
    print("gate: ok ({} series within tolerance {:.0%})".format(
        len(report.comparisons), thresholds["tolerance"]))
    return 0


def _cmd_bench_serve(args, rest: List[str]) -> int:
    """``repro bench serve`` — warm daemon vs cold single-shot CLI."""
    from repro.serve.bench import (
        DEFAULT_MIN_SPEEDUP,
        ServeBenchError,
        check_speedup,
        run_serve_bench,
        serve_phases,
    )

    if rest:
        log.error("bench serve takes no positional arguments; got {!r}"
                  .format(rest))
        return 2
    names = [n for n in args.only.split(",") if n] if args.only else None
    recording = _HistoryRecording(enabled=not args.no_history)
    with recording:
        result = run_serve_bench(names=names, repeats=max(args.repeats, 1))
    recording.append(args.history, label="bench-serve",
                     extra_phases=serve_phases(result))
    print(render_table(
        ["Mode", "Wall ms", "Queries/s"],
        [
            ["serve.cold", result["cold_ms"], result["cold_qps"]],
            ["serve.warm", result["warm_ms"], result["warm_qps"]],
        ],
        title="Serve throughput over {} ({} queries, {:.2f}x warm)".format(
            ", ".join(result["benchmarks"]), result["queries"],
            result["speedup"]),
    ))
    min_speedup = (DEFAULT_MIN_SPEEDUP if args.min_speedup is None
                   else args.min_speedup)
    try:
        check_speedup(result, min_speedup)
    except ServeBenchError as err:
        log.error("bench serve: {}".format(err))
        return 1
    print("bench serve: ok ({:.2f}x >= {:.1f}x)".format(
        result["speedup"], min_speedup))
    return 0


def cmd_serve(args) -> int:
    """``repro serve`` — the long-running analysis daemon."""
    import json
    import os
    import signal
    from pathlib import Path

    from repro.obs.sampler import TRACE_STORE_ENV, HeadSampler
    from repro.obs.tracestore import TraceStore
    from repro.serve.daemon import Daemon
    from repro.serve.factcache import DEFAULT_MAX_BYTES, FactStore
    from repro.serve.session import SessionManager

    store = None
    if not args.no_cache:
        # None = flag omitted (use the store default); 0 = unbounded.
        max_bytes = args.cache_max_bytes
        if max_bytes == 0:
            max_bytes = None
        elif max_bytes is None:
            max_bytes = DEFAULT_MAX_BYTES
        store = FactStore(Path(args.cache_dir), max_bytes=max_bytes)
    if args.mode == "warmup":
        from repro.serve.warmup import warmup_from_corpus

        if store is None:
            log.error("serve warmup needs an on-disk store (drop --no-cache)")
            return 2
        if not args.corpus:
            log.error("serve warmup requires --corpus DIR")
            return 2
        summary = warmup_from_corpus(args.corpus, store,
                                     max_programs=args.max_programs)
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    manager = SessionManager(store=store, max_sessions=args.max_sessions,
                             differential=args.differential)
    if not 0.0 <= args.trace_sample_rate <= 1.0:
        log.error("serve: --trace-sample-rate must be in [0, 1]")
        return 2
    trace_store_dir = args.trace_store or os.environ.get(TRACE_STORE_ENV)
    daemon = Daemon(manager, deadline_seconds=args.deadline_seconds,
                    slo_ms=args.slo_ms, slow_ms=args.slow_ms,
                    access_log_path=args.access_log,
                    access_log_sample=args.access_log_sample,
                    journal_size=args.journal_size,
                    sampler=HeadSampler(args.trace_sample_rate),
                    trace_store=(TraceStore(trace_store_dir)
                                 if trace_store_dir else None))
    if args.http is not None:
        port = daemon.start_http(args.http)
        log.info("serve: http listening on 127.0.0.1:{}".format(port))
        if not args.stdio:
            # HTTP-only: print the port on stdout (clients parse it)
            # and block until a shutdown request or signal arrives.
            # SIGTERM/SIGINT drain gracefully: stop accepting analysis
            # work, finish in-flight requests, flush the fact store,
            # exit 0.  (Stdio mode keeps the default handlers — its
            # drain path is EOF or the shutdown op.)
            def _on_signal(signum, frame):
                log.info("serve: caught signal {}, draining".format(signum))
                daemon.begin_drain()

            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    signal.signal(sig, _on_signal)
                except ValueError:
                    pass  # not the main thread (embedded use)
            print("PORT {}".format(port), flush=True)
            daemon.shutdown_event.wait()
            drained = daemon.drain(timeout=args.drain_timeout)
            if not drained:
                log.warn("serve: drain timed out with requests in flight")
            return 0
    return daemon.serve_stdio(sys.stdin, sys.stdout)


def cmd_client(args) -> int:
    """``repro client`` — query a daemon (or run the smoke battery)."""
    import json
    import tempfile

    from repro.serve import client as serve_client

    if args.smoke:
        with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
            source = (_read_source(args.file) if args.file
                      else serve_client.SMOKE_SOURCE)
            report = serve_client.run_smoke(source, cache_dir=tmp)
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    if args.obs_smoke:
        with tempfile.TemporaryDirectory(prefix="repro-obs-smoke-") as tmp:
            source = (_read_source(args.file) if args.file
                      else serve_client.SMOKE_SOURCE)
            report = serve_client.run_obs_smoke(source, cache_dir=tmp)
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    if args.trace_smoke:
        with tempfile.TemporaryDirectory(
                prefix="repro-trace-smoke-") as tmp:
            source = (_read_source(args.file) if args.file
                      else serve_client.SMOKE_SOURCE)
            try:
                report = serve_client.run_trace_smoke(source,
                                                      cache_dir=tmp)
            except AssertionError as err:
                log.error("trace-smoke: {}".format(err))
                return 1
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    if not args.file:
        log.error("client requires FILE (or --smoke / --obs-smoke / "
                  "--trace-smoke)")
        return 2
    request = {
        "op": args.op,
        "id": "cli",
        "source": _read_source(args.file),
        "name": args.file,
        "open_world": args.open_world,
    }
    if args.analysis:
        request["analysis"] = args.analysis
    if args.trace_id:
        request["trace_id"] = args.trace_id
    if args.debug:
        request["debug"] = True
    if args.port is not None:
        response = serve_client.HttpClient(args.port).query(request)
    else:
        with serve_client.StdioClient(cache_dir=args.cache_dir) as stdio:
            response = stdio.query(request)
    spans = response.pop("spans", None) if args.debug else None
    print(json.dumps(response, indent=2, sort_keys=True))
    if args.debug:
        print("-- trace {} --".format(response.get("trace", "?")))
        print(serve_client.format_span_tree(spans or []))
    return 0 if response.get("ok") else 1


def cmd_chaos(args) -> int:
    """``repro chaos`` — seeded fault-injection batteries."""
    import json

    from repro.qa import chaos

    if args.list:
        for spec in chaos.built_in_plans():
            print("{:14s} [{}] {}".format(
                spec.name, spec.target, spec.description))
        return 0
    try:
        names = args.plan or [s.name for s in chaos.built_in_plans()]
        reports = []
        all_ok = True
        for name in names:
            report = chaos.run_chaos(name, seed=args.seed)
            reports.append(report)
            all_ok = all_ok and report["ok"]
            log.info("chaos {:14s} seed={} -> {} ({} injected)".format(
                name, args.seed, "ok" if report["ok"] else "VIOLATED",
                report["chaos_injected_total"]))
    except ValueError as err:
        log.error("chaos: {}".format(err))
        return 2
    payload = reports[0] if len(reports) == 1 else reports
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
    else:
        print(text)
    return 0 if all_ok else 1


def cmd_top(args) -> int:
    """``repro top`` — live dashboard over a serving daemon."""
    from repro.obs.top import run_top

    return run_top(args.port, host=args.host, interval=args.interval,
                   once=args.once, iterations=args.iterations)


def cmd_trace(args) -> int:
    """``repro trace`` — inspect the on-disk continuous-trace store."""
    import os

    from repro.obs.sampler import TRACE_STORE_ENV
    from repro.obs.tracestore import DEFAULT_TRACE_DIR, TraceStore
    from repro.obs.traceview import (
        render_rollup,
        render_trace,
        summarize_traces,
    )

    store_dir = (args.store or os.environ.get(TRACE_STORE_ENV)
                 or DEFAULT_TRACE_DIR)
    store = TraceStore(store_dir)
    if args.trace_cmd == "ls":
        summaries = summarize_traces(store.traces())
        if args.limit is not None:
            summaries = summaries[:args.limit]
        if not summaries:
            print("(trace store {} is empty)".format(store_dir))
            return 0
        rows = [[s["trace"], s["records"], s["procs"],
                 ",".join(s["origins"]), ",".join(s["ops"]),
                 "{:.2f}".format(s["ms"]), "ok" if s["ok"] else "ERR"]
                for s in summaries]
        print(render_table(
            ["trace", "recs", "procs", "origins", "ops", "ms", "status"],
            rows, align_left=(0, 3, 4, 6)))
        return 0
    if args.trace_cmd == "show":
        records = store.trace(args.id)
        if not records:
            log.error("trace: no records for {!r} in {}".format(
                args.id, store_dir))
            return 1
        print(render_trace(args.id, records), end="")
        return 0
    if args.trace_cmd == "top":
        records = store.records()
        if not records:
            print("(trace store {} is empty)".format(store_dir))
            return 0
        print(render_rollup(records, by=args.by), end="")
        return 0
    # export: raw records as JSONL, one line each (optionally one trace)
    records = store.trace(args.id) if args.id else store.records()
    for record in records:
        print(json.dumps(record, sort_keys=True))
    return 0


def _read_source(path: str) -> str:
    with open(path) as f:
        return f.read()


def cmd_tables(args) -> int:
    from repro.bench import tables
    from repro.bench.suite import BenchmarkSuite

    failures: List[dict] = []
    if args.programs:
        suite = BenchmarkSuite.from_directory(args.programs)
        # Compile every input eagerly behind a bulkhead: broken files
        # become failure entries and the tables cover the rest.
        for name in suite.names():
            started = time.perf_counter()
            try:
                suite.program(name)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                failures.append(_failure_entry(
                    name, "compile", exc,
                    seconds=time.perf_counter() - started))
                suite.drop(name)
    else:
        suite = BenchmarkSuite()
    generators = {
        "table4": tables.table4,
        "table5": tables.table5,
        "table6": tables.table6,
        "figure8": tables.figure8,
        "figure9": tables.figure9,
        "figure10": tables.figure10,
        "figure11": tables.figure11,
        "figure12": tables.figure12,
    }
    wanted = args.which or list(generators)
    for key in wanted:
        if key not in generators:
            print("unknown table {!r}; known: {}".format(key, sorted(generators)))
            return 2
    for key in wanted:
        generator = generators[key]
        started = time.perf_counter()
        try:
            if key == "table5":
                result = generator(suite, engine=args.engine)
            else:
                result = generator(suite)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            failures.append(_failure_entry(
                key, "table", exc, seconds=time.perf_counter() - started))
            continue
        print(result.text)
        print()
    _emit_failures(failures)
    return 1 if failures else 0


def cmd_fuzz(args) -> int:
    from repro.qa.generator import GenConfig
    from repro.qa.runner import run_fuzz

    config = GenConfig(max_stmts=args.max_stmts)
    out_dir = None if args.no_report else args.out

    def progress(seed: int, oracle) -> None:
        if args.verbose:
            status = "ok" if oracle.ok else "FAIL"
            run = "ran" if oracle.ran else ("trap" if oracle.trapped else "-")
            print("seed {:6d}  {:4s} {}".format(seed, run, status))

    report = run_fuzz(
        count=args.count,
        base_seed=args.seed,
        out_dir=out_dir,
        per_program_seconds=args.per_program_seconds,
        max_steps=args.max_steps,
        reduce=not args.no_reduce,
        config=config,
        progress=progress,
        jobs=args.jobs,
    )
    print(
        "fuzz: {} programs (seeds {}..{}), {} ran clean, {} trapped, "
        "{} failures, {:.1f}s".format(
            report.count,
            report.base_seed,
            report.base_seed + report.count - 1,
            report.ran_clean,
            report.trapped,
            len(report.failures),
            report.duration,
        )
    )
    if report.failures:
        print("distinct failure shapes: {}".format(
            " ".join(report.distinct_digests())))
        for f in report.failures[:10]:
            print("  seed {:6d}  [{}] {}: {}".format(
                f.seed, f.phase, f.kind, f.message[:100]))
            if f.bundle:
                print("            bundle: {}".format(f.bundle))
        if len(report.failures) > 10:
            print("  ... and {} more".format(len(report.failures) - 10))
    if out_dir is not None:
        print("report: {}/fuzz-report.json".format(out_dir))
    return 1 if report.failures else 0


def cmd_corpus_gen(args) -> int:
    from pathlib import Path

    from repro.qa.corpus import CorpusSpec, generate_corpus

    try:
        spec = CorpusSpec(
            seed=args.seed,
            count=args.count,
            shard_size=args.shard_size,
            max_object_types=args.max_object_types,
            max_ref_vars=args.max_ref_vars,
            max_int_vars=args.max_int_vars,
            max_procs=args.max_procs,
            max_stmts=args.max_stmts,
            max_depth=args.max_depth,
            allow_methods=not args.no_methods,
            allow_nil=not args.no_nil,
        )
    except ValueError as err:
        log.error("corpus gen: {}".format(err))
        return 2

    def progress(done: int, total: int) -> None:
        if args.verbose:
            print("shard {}/{}".format(done, total))

    started = time.perf_counter()
    manifest = generate_corpus(spec, Path(args.dir), progress=progress)
    print("corpus: {} programs in {} shards -> {} ({:.1f}s)".format(
        manifest.n_programs, len(manifest.shards), args.dir,
        time.perf_counter() - started))
    return 0


def cmd_corpus_verify(args) -> int:
    from repro.qa.corpus import verify_corpus

    try:
        manifest = verify_corpus(args.dir)
    except (OSError, ValueError) as err:
        log.error("corpus verify: {}".format(err))
        return 1
    print("corpus: ok ({} programs, {} shards, all hashes match)".format(
        manifest.n_programs, len(manifest.shards)))
    return 0


def cmd_corpus_run(args) -> int:
    """Driver wrapper: when a sampled trace context was exported into
    the environment (``REPRO_TRACEPARENT``), the whole run traces under
    it — the driver opens its own scope parented on the remote span,
    re-exports the context so forked shard workers parent under the
    driver, and flushes a ``corpus`` record to the trace store."""
    import os

    from repro.obs import sampler as tracing

    ctx = tracing.context_from_env()
    if ctx is None or not ctx.sampled:
        return _corpus_run_body(args)
    started = time.perf_counter()
    scope = obs.trace_scope(ctx.trace_id, collect=True,
                            remote_parent=(ctx.proc, ctx.span_id))
    with scope:
        with obs.span("corpus.run.driver"):
            tracing.export_context(tracing.current_context())
            try:
                rc = _corpus_run_body(args)
            finally:
                tracing.export_context(ctx)
    store_dir = os.environ.get(tracing.TRACE_STORE_ENV)
    if store_dir:
        from repro.obs.tracestore import TraceStore, make_record

        TraceStore(store_dir).append(make_record(
            scope, origin="corpus", op="corpus.run",
            ms=(time.perf_counter() - started) * 1000.0, ok=rc == 0,
            unit=args.dir))
    return rc


def _corpus_run_body(args) -> int:
    from repro.obs import metrics
    from repro.qa.corpus import run_corpus

    analyses = [a for a in (args.analyses or "").split(",") if a] or None

    def progress(outcome) -> None:
        if args.verbose:
            print("shard {:4d}: {} programs, {} failures, {:.2f}s".format(
                outcome.index, outcome.programs, len(outcome.failures),
                outcome.seconds))

    recording = _HistoryRecording(enabled=not args.no_history)
    with recording:
        try:
            report = run_corpus(
                args.dir,
                jobs=args.jobs,
                analyses=analyses,
                engine=args.engine,
                oracles=args.oracles,
                per_program_seconds=args.per_program_seconds,
                max_steps=args.max_steps,
                max_shards=args.max_shards,
                shard_timeout_seconds=args.shard_timeout,
                max_shard_retries=args.max_shard_retries,
                progress=progress,
            )
        except (OSError, ValueError) as err:
            log.error("corpus run: {}".format(err))
            return 2
        metrics.registry().gauge("corpus.run.programs_per_second").set(
            round(report.throughput(), 3))
    recording.append(args.history, label="corpus")
    print(
        "corpus run: {} programs / {} shards (jobs={}, engine={}), "
        "{} refs, {} local + {} global pairs, {} failures, "
        "{:.1f}s ({:.1f} programs/s)".format(
            report.programs, len(report.shards), report.jobs, report.engine,
            report.references, report.local_pairs, report.global_pairs,
            len(report.failures), report.duration, report.throughput()))
    for entry in report.quarantined:
        log.error("corpus run: quarantined shard {} ({}): {}".format(
            entry["index"], entry["file"], entry["reason"]))
    _emit_failures(report.failures)
    return 1 if (report.failures or report.quarantined) else 0


def cmd_corpus_bench(args) -> int:
    from repro.qa.corpus import bench_corpus

    recording = _HistoryRecording(enabled=not args.no_history)
    with recording:
        try:
            phases = bench_corpus(
                args.dir, repeats=args.repeats, max_shards=args.max_shards,
                jobs=args.jobs or 1)
        except (OSError, ValueError) as err:
            log.error("corpus bench: {}".format(err))
            return 2
    recording.append(args.history, label="corpus-bench")
    fast = phases["corpus.table5.fast"]
    build = phases["corpus.bulk.build"]
    bulk = phases["corpus.table5.bulk"]
    shared = phases["corpus.table5.bulk_shared"]
    speedup = (fast / bulk) if bulk > 0 else float("inf")
    print("corpus bench: {} (program, analysis) counts, repeats={}".format(
        int(phases["corpus.bench.programs"]), args.repeats))
    print("  corpus.table5.fast : {:8.3f}s".format(fast))
    print("  corpus.bulk.build  : {:8.3f}s (one-time, reusable matrices)"
          .format(build))
    print("  corpus.table5.bulk : {:8.3f}s".format(bulk))
    print("  corpus.table5.bulk_shared : {:8.3f}s (mmap arena, {} B, "
          "jobs={})".format(shared,
                            int(phases["corpus.bulk.arena_bytes"]),
                            args.jobs or 1))
    print("  count speedup (fast/bulk): {:.1f}x".format(speedup))
    if args.min_speedup is not None and speedup < args.min_speedup:
        log.error("corpus bench: bulk speedup {:.1f}x below required {:.1f}x"
                  .format(speedup, args.min_speedup))
        return 1
    return 0


def cmd_corpus(args) -> int:
    """Dispatch ``repro corpus gen|verify|run|bench``."""
    return args.corpus_func(args)


def _load_profile_target(target: str):
    """A registered benchmark name, or a path to a ``.m3`` file."""
    import os

    from repro.bench import registry

    if not os.path.exists(target) and target in registry.benchmark_names():
        return compile_program(registry.load_source(target), target)
    return _load(target)


def cmd_profile(args) -> int:
    from repro.obs import metrics
    from repro.obs.profile import (
        render_counter_table,
        render_phase_tree,
        tree_check,
    )

    recorder = obs.recorder()
    recorder.reset()
    metrics.registry().reset()
    obs.enable()
    analysis_for_rle = args.analysis or "SMFieldTypeRefs"
    try:
        _profile_phases(args, recorder, analysis_for_rle)
    finally:
        # Leave the process recorder the way library users expect it
        # (recorded spans survive for the --trace flush in main()).
        obs.disable()
    print("profile: {}".format(args.target))
    print()
    print(render_phase_tree(recorder))
    print()
    print(render_counter_table(metrics.registry(), top=args.top))
    if args.check:
        tree_check(recorder, tolerance=args.check_tol)
        log.info("profile: tree check ok "
                 "(children sum to parents within {:.0%})".format(
                     args.check_tol))
    return 0


def _profile_phases(args, recorder, analysis_for_rle: str) -> None:
    with recorder.span("profile", target=args.target):
        with recorder.span("load"):
            program = _load_profile_target(args.target)
        with recorder.span("base"):
            base = program.base()
        for name in ANALYSIS_NAMES:
            with recorder.span("analysis", analysis=name):
                analysis = program.analysis(name, open_world=args.open_world)
                AliasPairCounter(
                    base.program, analysis, engine=args.engine
                ).count()
        with recorder.span("optimize", analysis=analysis_for_rle):
            result = program.pipeline.build(analysis=analysis_for_rle)
        if args.run:
            with recorder.span("execute"):
                program.run(result)
        if args.limit:
            with recorder.span("limit"):
                program.limit_study(result)


# ----------------------------------------------------------------------
# Argument parsing


def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    from repro.analysis.alias_pairs import DEFAULT_ENGINE, ENGINES

    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=DEFAULT_ENGINE,
        help="alias-pair counting engine: the partition-based fast path, "
        "the per-pair reference loop, the bitset-matrix bulk kernels, or "
        "differential (all + agreement check)",
    )


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE.jsonl",
        default=None,
        help="enable the span recorder and write a schema-pinned JSONL "
        "trace (one object per span/metric) on exit",
    )


def _add_opt_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--analysis",
        choices=ANALYSIS_NAMES,
        default=None,
        help="run RLE under this TBAA level",
    )
    parser.add_argument("--minv-inline", action="store_true",
                        help="devirtualize and inline before RLE")
    parser.add_argument("--open-world", action="store_true",
                        help="assume unavailable code exists (Section 4)")
    parser.add_argument("--copyprop", action="store_true",
                        help="enable the copy-propagation extension")
    parser.add_argument("--pre", action="store_true",
                        help="enable the PRE-of-loads extension")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Type-Based Alias Analysis (PLDI 1998) reproduction toolkit",
    )
    parser.add_argument("-q", "--quiet", dest="log_quiet", action="store_true",
                        help="only print errors to stderr")
    parser.add_argument("-v", "--verbose", dest="log_verbose",
                        action="store_true",
                        help="also print debug diagnostics to stderr")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="parse and type-check a MiniM3 file")
    p.add_argument("file")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("ir", help="dump (optionally optimized) IR")
    p.add_argument("file")
    _add_opt_flags(p)
    p.set_defaults(func=cmd_ir)

    p = sub.add_parser("run", help="execute on the simulated machine")
    p.add_argument("file")
    p.add_argument("--stats", action="store_true", help="print counters to stderr")
    _add_opt_flags(p)
    _add_trace_flag(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("alias", help="static alias-pair report")
    p.add_argument("file")
    p.add_argument("--open-world", action="store_true")
    _add_engine_flag(p)
    _add_trace_flag(p)
    p.set_defaults(func=cmd_alias)

    p = sub.add_parser("limit", help="dynamic redundancy limit study")
    p.add_argument("file")
    p.add_argument("--analysis", choices=ANALYSIS_NAMES, default=None)
    _add_trace_flag(p)
    p.set_defaults(func=cmd_limit)

    p = sub.add_parser(
        "bench",
        help="run registered paper benchmarks; 'compare'/'gate' work "
        "the regression ledger",
        description="repro bench [NAME] runs the registered benchmarks "
        "and appends a schema-versioned record (git sha, host, per-phase "
        "wall seconds, counters) to the benchmark ledger.  "
        "'repro bench compare OLD NEW' compares two ledger selections "
        "(files, git shas/refs, or 'latest') with min-of-k best times "
        "inside a median+MAD noise band; 'repro bench gate --baseline "
        "REF' measures HEAD --repeats times, compares against the "
        "baseline, and exits nonzero on regression beyond --tol.",
    )
    p.add_argument("name", nargs="*", default=None, metavar="NAME",
                   help="one benchmark name, or a subcommand: "
                   "compare OLD NEW | gate | serve")
    p.add_argument("--analysis", choices=ANALYSIS_NAMES, default=None)
    p.add_argument("--history", metavar="FILE.jsonl",
                   default="BENCH_history.jsonl",
                   help="benchmark ledger to append to / compare from "
                   "(default BENCH_history.jsonl)")
    p.add_argument("--no-history", action="store_true",
                   help="do not append a run record to the ledger")
    p.add_argument("--only", metavar="NAME[,NAME...]", default=None,
                   help="restrict a suite run (or gate measurement) to "
                   "these benchmarks")
    p.add_argument("--baseline", metavar="REF", default=None,
                   help="gate: baseline records — a ledger file, a git "
                   "sha/ref, or 'latest'")
    p.add_argument("--repeats", type=int, default=1,
                   help="gate: fresh measurement repeats (min-of-k, "
                   "default 1)")
    p.add_argument("--tol", "--tolerance", dest="tolerance", type=float,
                   default=None,
                   help="relative slowdown that counts as a regression "
                   "(default 0.25 = 25%%)")
    p.add_argument("--mad-k", type=float, default=None,
                   help="noise band: new best must also exceed the old "
                   "median by this many MADs (default 3.0)")
    p.add_argument("--min-seconds", type=float, default=None,
                   help="phases whose best is below this never gate "
                   "(default 0.005)")
    p.add_argument("--md", metavar="FILE", default=None,
                   help="compare/gate: also write the report as markdown")
    p.add_argument("--corpus", metavar="DIR", default=None,
                   help="gate: also time the corpus engine benchmark over "
                   "this corpus each repeat, so corpus.table5.* phases "
                   "are gated alongside the benchmarks")
    p.add_argument("--corpus-shards", type=int, default=None, metavar="N",
                   help="gate: limit --corpus to its first N shards")
    p.add_argument("--serve", action="store_true",
                   help="gate: also run the serve warm-vs-cold benchmark "
                   "each repeat, gating the serve.cold/serve.warm phases "
                   "and enforcing --min-speedup outright")
    p.add_argument("--min-speedup", type=float, default=None, metavar="X",
                   help="serve/gate --serve: fail unless warm served "
                   "throughput reaches X times the cold single-shot "
                   "throughput (default 5.0)")
    _add_trace_flag(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("tables", help="regenerate the paper's tables/figures")
    p.add_argument("which", nargs="*", default=None,
                   help="e.g. table5 figure8 (default: all)")
    p.add_argument("--programs", metavar="DIR", default=None,
                   help="generate the tables over every .m3 file in DIR "
                   "instead of the registered benchmarks")
    _add_engine_flag(p)
    _add_trace_flag(p)
    p.set_defaults(func=cmd_tables)

    p = sub.add_parser(
        "fuzz",
        help="cross-check the analyses on generated programs",
        description="Generate seeded, type-correct MiniM3 programs and "
        "run the soundness/consistency oracles over each: analysis "
        "refinement, open-world conservatism, fast-vs-reference engine "
        "agreement, dynamic (traced) soundness and cache coherence.  "
        "Failures are isolated per seed, delta-debugged to minimal "
        "reproducers and written as crash bundles.",
    )
    p.add_argument("--count", type=int, default=200,
                   help="number of programs to generate (default 200)")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; program i uses seed+i (default 0)")
    p.add_argument("--out", default="benchmarks/results/fuzz",
                   help="directory for crash bundles and fuzz-report.json")
    p.add_argument("--no-report", action="store_true",
                   help="do not write bundles or the JSON report")
    p.add_argument("--no-reduce", action="store_true",
                   help="skip delta-debugging of failing programs")
    p.add_argument("--per-program-seconds", type=float, default=10.0,
                   help="wall-clock bulkhead per program (default 10)")
    p.add_argument("--max-steps", type=int, default=400_000,
                   help="interpreter step budget per traced run")
    p.add_argument("--max-stmts", type=int, default=22,
                   help="statement bound for generated programs")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes; seeds fan out in contiguous "
                   "chunks with per-seed fault isolation and merge "
                   "deterministically by seed (default: cpu count; "
                   "--verbose per-seed lines need --jobs 1)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print one line per seed")
    _add_trace_flag(p)
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "corpus",
        help="generate and drive sharded program corpora",
        description="repro corpus gen renders a seeded, content-hashed "
        "corpus of generated MiniM3 programs into sharded JSON files; "
        "verify re-checks every shard hash; run drives the Table 5 count "
        "(and optionally the soundness oracles) over the shards with a "
        "multiprocessing pool and per-shard fault bulkheads, appending a "
        "throughput record to the benchmark ledger; bench times the fast "
        "engine against the bulk bitset kernels over the whole corpus.",
    )
    corpus_sub = p.add_subparsers(dest="corpus_cmd", required=True,
                                  metavar="{gen,verify,run,bench}")

    cg = corpus_sub.add_parser("gen", help="render a corpus to disk")
    cg.add_argument("dir", help="output directory for shards + manifest")
    cg.add_argument("--count", type=int, default=1000,
                    help="number of programs (default 1000)")
    cg.add_argument("--seed", type=int, default=0,
                    help="base seed; program i uses seed+i (default 0)")
    cg.add_argument("--shard-size", type=int, default=100,
                    help="programs per shard file (default 100)")
    cg.add_argument("--max-object-types", type=int, default=4)
    cg.add_argument("--max-ref-vars", type=int, default=4)
    cg.add_argument("--max-int-vars", type=int, default=3)
    cg.add_argument("--max-procs", type=int, default=3)
    cg.add_argument("--max-stmts", type=int, default=22,
                    help="statement bound per program (default 22)")
    cg.add_argument("--max-depth", type=int, default=2)
    cg.add_argument("--no-methods", action="store_true")
    cg.add_argument("--no-nil", action="store_true")
    cg.add_argument("-v", "--verbose", action="store_true",
                    help="print one line per shard")
    cg.set_defaults(func=cmd_corpus, corpus_func=cmd_corpus_gen)

    cv = corpus_sub.add_parser("verify", help="hash-check every shard")
    cv.add_argument("dir")
    cv.set_defaults(func=cmd_corpus, corpus_func=cmd_corpus_verify)

    cr = corpus_sub.add_parser(
        "run", help="sharded Table 5 / oracle driver")
    cr.add_argument("dir")
    cr.add_argument("--jobs", type=int, default=None, metavar="N",
                    help="shard worker processes (default: cpu count)")
    cr.add_argument("--engine", choices=("reference", "fast", "bulk",
                                         "differential"), default="bulk",
                    help="alias-pair engine for the count (default bulk)")
    cr.add_argument("--analyses", metavar="NAME[,NAME...]", default=None,
                    help="comma-separated analyses (default: all three)")
    cr.add_argument("--oracles", action="store_true",
                    help="also run the soundness oracle battery per "
                    "program (regenerates each seed and cross-checks the "
                    "stored hash first)")
    cr.add_argument("--per-program-seconds", type=float, default=10.0,
                    help="wall-clock bulkhead per program (default 10)")
    cr.add_argument("--max-steps", type=int, default=400_000,
                    help="interpreter step budget for --oracles runs")
    cr.add_argument("--max-shards", type=int, default=None, metavar="N",
                    help="only process the first N shards")
    cr.add_argument("--shard-timeout", type=float, default=None,
                    metavar="S", dest="shard_timeout",
                    help="watchdog: retry a shard whose worker hangs or "
                    "dies for S seconds, then quarantine it (jobs > 1 "
                    "only; default: no watchdog)")
    cr.add_argument("--max-shard-retries", type=int, default=1, metavar="N",
                    help="watchdog resubmissions before a shard is "
                    "quarantined (default 1)")
    cr.add_argument("--history", metavar="FILE.jsonl",
                    default="BENCH_history.jsonl",
                    help="ledger to append the throughput record to")
    cr.add_argument("--no-history", action="store_true",
                    help="do not append a ledger record")
    cr.add_argument("-v", "--verbose", action="store_true",
                    help="print one line per shard")
    _add_trace_flag(cr)
    cr.set_defaults(func=cmd_corpus, corpus_func=cmd_corpus_run)

    cb = corpus_sub.add_parser(
        "bench", help="fast vs bulk engine timing over a corpus")
    cb.add_argument("dir")
    cb.add_argument("--repeats", type=int, default=3,
                    help="timed count repetitions per engine (default 3; "
                    "the bulk matrices build once and re-count)")
    cb.add_argument("--max-shards", type=int, default=None, metavar="N")
    cb.add_argument("--jobs", type=int, default=None, metavar="N",
                    help="worker processes for the shared-arena count "
                    "phase; the forked pool inherits one read-only mmap "
                    "arena instead of pickling matrices per worker "
                    "(default 1 = in-process)")
    cb.add_argument("--min-speedup", type=float, default=None, metavar="X",
                    help="exit nonzero unless fast/bulk count speedup "
                    "reaches X")
    cb.add_argument("--history", metavar="FILE.jsonl",
                    default="BENCH_history.jsonl",
                    help="ledger to append the phase record to")
    cb.add_argument("--no-history", action="store_true",
                    help="do not append a ledger record")
    _add_trace_flag(cb)
    cb.set_defaults(func=cmd_corpus, corpus_func=cmd_corpus_bench)

    p = sub.add_parser(
        "serve",
        help="long-running analysis daemon (JSONL stdio + localhost HTTP)",
        description="Keep analyses warm and answer batched alias / "
        "tables / limit / facts queries without recompiling: each "
        "request line on stdin (a JSON object, or an array for a batch) "
        "produces one response line on stdout.  --http additionally "
        "binds a localhost HTTP shim (POST /v1/query, GET /v1/ping, "
        "GET /v1/stats, GET /v1/metrics in Prometheus text, GET "
        "/v1/requests for the recent-request journal; see repro top). "
        "Derived facts persist in a content-hashed, "
        "versioned on-disk store, so an edited module only invalidates "
        "its own partition and a restarted daemon answers warm.",
    )
    p.add_argument("mode", nargs="?", choices=("warmup",), default=None,
                   help="optional subcommand: 'warmup' pre-populates the "
                   "fact store from --corpus DIR (largest modules first, "
                   "stopping at the size cap) instead of serving")
    p.add_argument("--stdio", action="store_true", default=True,
                   help="serve the JSONL protocol on stdio (default)")
    p.add_argument("--no-stdio", dest="stdio", action="store_false",
                   help="HTTP only: print 'PORT n' and block until a "
                   "shutdown request")
    p.add_argument("--http", type=int, default=None, metavar="PORT",
                   nargs="?", const=0,
                   help="also serve HTTP on 127.0.0.1:PORT (0 or no "
                   "value = OS-assigned)")
    p.add_argument("--cache-dir", default=".repro-factcache",
                   help="on-disk fact store directory "
                   "(default .repro-factcache)")
    p.add_argument("--no-cache", action="store_true",
                   help="keep facts in memory only")
    p.add_argument("--cache-max-bytes", type=int,
                   default=None, metavar="N",
                   help="fact store size cap before LRU eviction "
                   "(default 256 MiB; 0 = unbounded)")
    p.add_argument("--max-sessions", type=int, default=64, metavar="N",
                   help="warm in-memory module sessions (default 64)")
    p.add_argument("--differential", action="store_true",
                   help="pin every served count against the cold fast "
                   "and reference engines (slower; for validation)")
    p.add_argument("--deadline-seconds", type=float, default=None,
                   metavar="S",
                   help="per-request wall-clock budget; an expired "
                   "request answers a typed 'deadline_exceeded' error "
                   "(default: unbounded)")
    p.add_argument("--drain-timeout", type=float, default=30.0, metavar="S",
                   help="how long SIGTERM/SIGINT drain waits for "
                   "in-flight requests before exiting (default 30)")
    p.add_argument("--slo-ms", type=float, default=250.0, metavar="MS",
                   help="per-request latency objective backing the "
                   "serve.slo.ok/breach counters (default 250)")
    p.add_argument("--slow-ms", type=float, default=None, metavar="MS",
                   help="requests slower than this are written to "
                   "--access-log (default: the --slo-ms value)")
    p.add_argument("--access-log", default=None, metavar="FILE.jsonl",
                   help="append slow-request JSONL records here "
                   "(off unless given)")
    p.add_argument("--access-log-sample", type=int, default=1, metavar="N",
                   help="log every Nth slow request (default 1 = all)")
    p.add_argument("--journal-size", type=int, default=256, metavar="N",
                   help="recent-request journal ring capacity "
                   "(GET /v1/requests; default 256)")
    p.add_argument("--trace-sample-rate", type=float,
                   default=SERVE_SAMPLE_RATE, metavar="R",
                   help="always-on head-sampling rate in [0, 1]: each "
                   "trace id deterministically keeps or drops its whole "
                   "trace (default {})".format(SERVE_SAMPLE_RATE))
    p.add_argument("--trace-store", default=None, metavar="DIR",
                   help="flush sampled trace records into this bounded "
                   "on-disk store (see 'repro trace'; default: "
                   "$REPRO_TRACE_STORE, else sampling decides span "
                   "collection only)")
    p.add_argument("--corpus", default=None, metavar="DIR",
                   help="corpus manifest directory for 'warmup'")
    p.add_argument("--max-programs", type=int, default=None, metavar="N",
                   help="warm at most N programs (warmup only)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "client",
        help="query a serve daemon (or run the serve smoke battery)",
        description="repro client FILE sends one query for FILE's "
        "source: over HTTP when --port is given, else to a freshly "
        "spawned stdio daemon.  repro client --smoke boots a daemon "
        "with both transports, fires a batched query set over each, "
        "asserts differential equality and clean shutdown, and prints "
        "a JSON report (this is what 'make serve-smoke' runs).",
    )
    p.add_argument("file", nargs="?", default=None,
                   help="MiniM3 source file to query about")
    p.add_argument("--op", choices=("alias", "tables", "limit", "facts"),
                   default="tables", help="query operation (default tables)")
    p.add_argument("--analysis", choices=ANALYSIS_NAMES, default=None,
                   help="analysis for --op alias/limit")
    p.add_argument("--open-world", action="store_true")
    p.add_argument("--port", type=int, default=None, metavar="PORT",
                   help="query a running daemon's HTTP shim on this port "
                   "instead of spawning one")
    p.add_argument("--cache-dir", default=".repro-factcache",
                   help="fact store for a spawned stdio daemon")
    p.add_argument("--smoke", action="store_true",
                   help="run the two-transport smoke battery and exit")
    p.add_argument("--obs-smoke", action="store_true",
                   help="run the live-observability battery (traced + "
                   "debug queries, /v1/metrics self-lint, journal, "
                   "access log, repro top --once) and exit")
    p.add_argument("--trace-smoke", action="store_true",
                   help="run the continuous-tracing battery (one trace "
                   "propagated across a subprocess daemon and forked "
                   "corpus workers, flushed to a trace store and "
                   "reconstructed as a single tree by repro trace) "
                   "and exit")
    p.add_argument("--debug", action="store_true",
                   help="request the per-query span tree and print it "
                   "as a phase breakdown after the response")
    p.add_argument("--trace-id", default=None, metavar="ID",
                   help="client-chosen trace id to propagate (default: "
                   "the daemon mints one)")
    p.set_defaults(func=cmd_client)

    p = sub.add_parser(
        "chaos",
        help="seeded fault-injection batteries over serve and corpus",
        description="Run the daemon or corpus pipeline under a named "
        "FaultPlan (flaky fact store, corrupted partitions, crashing "
        "compiles, stalled handlers, dropped connections, killed "
        "workers) and assert the core invariant: every answer that "
        "leaves the system is differential-pinned correct or a typed "
        "error — never silently wrong, never a crash.  Deterministic "
        "per (--plan, --seed); prints a JSON report and exits nonzero "
        "on any violation.",
    )
    p.add_argument("--plan", action="append", default=None, metavar="NAME",
                   help="built-in plan to run (repeatable; default: all; "
                   "see --list)")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-plan seed (default 0)")
    p.add_argument("--list", action="store_true",
                   help="list the built-in plans and exit")
    p.add_argument("--out", default=None, metavar="FILE.json",
                   help="write the JSON report to FILE instead of stdout")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "top",
        help="live terminal dashboard over a serving daemon",
        description="Poll a daemon's /v1/metrics, /v1/requests and "
        "/v1/ping endpoints and render throughput, per-op latency "
        "quantiles (streaming P2 gauges), SLO ok/breach counts, cache "
        "hit rates, degraded/draining state and the slowest recent "
        "traces.  --once renders a single frame and exits (the CI "
        "mode); live mode refreshes every --interval seconds until "
        "Ctrl-C.",
    )
    p.add_argument("--port", type=int, required=True, metavar="PORT",
                   help="the daemon's HTTP port (repro serve --http)")
    p.add_argument("--host", default="127.0.0.1",
                   help="daemon host (default 127.0.0.1)")
    p.add_argument("--interval", type=float, default=2.0, metavar="S",
                   help="seconds between polls in live mode (default 2)")
    p.add_argument("--once", action="store_true",
                   help="render one frame and exit")
    p.add_argument("--iterations", type=int, default=None, metavar="N",
                   help="stop after N frames (default: run until Ctrl-C)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "trace",
        help="inspect the continuous-tracing store (ls/show/top/export)",
        description="Read the bounded on-disk trace store that serving "
        "daemons and traced batch runs flush sampled span trees into "
        "(repro serve --trace-store).  ls lists one summary line per "
        "trace; show ID stitches one trace's records — client, daemon, "
        "forked corpus workers — into a single parent-linked span tree "
        "with process boundaries marked; top aggregates total/self "
        "milliseconds per phase (or per op) across every stored record; "
        "export dumps raw records as JSONL.",
    )
    trace_sub = p.add_subparsers(dest="trace_cmd", required=True,
                                 metavar="{ls,show,top,export}")

    def _store_flag(sp) -> None:
        sp.add_argument("--store", default=None, metavar="DIR",
                        help="trace store directory (default: "
                        "$REPRO_TRACE_STORE, else .repro-traces)")

    tl = trace_sub.add_parser("ls", help="one summary line per trace")
    _store_flag(tl)
    tl.add_argument("--limit", type=int, default=None, metavar="N",
                    help="show at most N traces (newest first)")
    tl.set_defaults(func=cmd_trace)

    tw = trace_sub.add_parser(
        "show", help="render one trace's cross-process span tree")
    tw.add_argument("id", help="trace id (see 'repro trace ls')")
    _store_flag(tw)
    tw.set_defaults(func=cmd_trace)

    tt = trace_sub.add_parser(
        "top", help="total/self time rollup across stored records")
    tt.add_argument("--by", choices=("phase", "op"), default="phase",
                    help="group by span name ('phase', with self time) "
                    "or by record op (default phase)")
    _store_flag(tt)
    tt.set_defaults(func=cmd_trace)

    te = trace_sub.add_parser(
        "export", help="dump trace records as JSONL")
    te.add_argument("id", nargs="?", default=None,
                    help="only this trace (default: every record)")
    _store_flag(te)
    te.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "profile",
        help="phase-time tree and top metric counts for one program",
        description="Compile TARGET (a .m3 file or a registered benchmark "
        "name), build every analysis level, run the Table 5 alias-pair "
        "count and the RLE pipeline under the span recorder, then print "
        "a phase-time tree (span times, share of total) and the top-N "
        "counter table.  --trace additionally writes the JSONL trace.",
    )
    p.add_argument("target",
                   help="path to a .m3 file, or a registered benchmark name")
    p.add_argument("--analysis", choices=ANALYSIS_NAMES, default=None,
                   help="TBAA level for the optimize phase")
    p.add_argument("--open-world", action="store_true")
    p.add_argument("--run", action="store_true",
                   help="also execute the optimized program (adds an "
                   "'execute' phase with run.interp/run.cachesim "
                   "children)")
    p.add_argument("--limit", action="store_true",
                   help="also run the dynamic limit study (adds a "
                   "'limit' phase with limit.replay/limit.classify "
                   "children)")
    p.add_argument("--top", type=int, default=20,
                   help="rows in the counter table (default 20)")
    p.add_argument("--check", action="store_true",
                   help="assert children sum to parents within tolerance "
                   "(used by 'make profile-smoke')")
    p.add_argument("--check-tol", type=float, default=0.25,
                   help="--check tolerance as a fraction of each parent "
                   "span (default 0.25; raise on loaded CI hosts)")
    _add_engine_flag(p)
    _add_trace_flag(p)
    p.set_defaults(func=cmd_profile)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # ``fuzz -v`` shares the short flag with the root parser; the root
    # flags use distinct dests so the subparser default cannot clobber
    # them.
    log.set_verbosity(quiet=getattr(args, "log_quiet", False),
                      verbose=getattr(args, "log_verbose", False))
    trace_path = getattr(args, "trace", None)
    if trace_path is not None:
        from repro.obs import metrics
        obs.reset()
        metrics.registry().reset()
        obs.enable()
    try:
        return _dispatch(args, trace_path)
    except CompileError as err:
        log.error("error: {}".format(err))
        return 1
    except FileNotFoundError as err:
        log.error("error: {}".format(err))
        return 1
    except ResourceLimitError as err:
        log.error("error: resource limit exceeded ({}): {}".format(err.kind, err))
        return 1
    except KeyboardInterrupt:
        # Conventional 128+SIGINT, without a traceback.
        log.error("interrupted")
        return 130
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly.  Redirect
        # stdout to devnull so interpreter shutdown does not raise again
        # while flushing.
        import os

        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:
            pass
        return 0


def _dispatch(args, trace_path: Optional[str]) -> int:
    """Run the subcommand; flush the JSONL trace even when it fails."""
    if trace_path is None:
        return args.func(args)
    try:
        return args.func(args)
    finally:
        from repro.obs.trace import write_trace

        obs.disable()
        lines = write_trace(trace_path)
        log.info("trace: wrote {} ({} lines)".format(trace_path, lines))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
