"""IR interpreter with instruction/load accounting.

Replaces the paper's Alpha simulator + ATOM instrumentation.  Counting
conventions (Table 4 of the paper):

* **instructions** — every executed IR instruction, terminators included;
* **heap loads** — LoadField / LoadElem / LoadDopeData / LoadDopeCount,
  and LoadInd when the handle resolves into the heap;
* **other loads** — LoadVar of globals, and LoadInd hitting a variable
  slot.  Reads of locals, parameters and temps are register traffic (the
  paper's baseline ran GCC's register allocator).

``tracer`` (when given) observes every *heap* load and store with its
simulated address, loaded/stored value, instruction and activation id —
the information ATOM recorded for the limit study.

Cache simulation is *deferred*: during execution every counted memory
access appends its address to a log, and the machine model replays the
log once the program finishes.  A direct-mapped cache depends only on
the access order, which the log preserves, so hits/misses/cycles are
bit-identical to eager simulation — but interpretation and cache
simulation become two separately-timed phases (``run.interp`` and
``run.cachesim`` spans) and the per-access cost drops to a list append.
"""

import sys
from typing import Callable, Dict, List, Optional

from repro.ir import instructions as ins
from repro.ir.cfg import ProgramIR, ProcIR
from repro.lang import types as ty
from repro.lang.errors import ResourceLimitError
from repro.obs import core as obs
from repro.obs import metrics
from repro.qa import guards
from repro.lang.symtab import Symbol
from repro.lang.typecheck import MAIN_PROC
from repro.runtime.machine import MachineModel
from repro.runtime.values import (
    ArrayRef,
    DopeRef,
    ElemLoc,
    FieldLoc,
    HeapAllocator,
    M3RuntimeError,
    ObjectRef,
    RecordRef,
    VarLoc,
    default_value,
)

_GLOBAL_BASE = 0x1000
_STACK_BASE = 0x8000_0000


class ExecutionStats:
    """Counters produced by one program run."""

    def __init__(self) -> None:
        self.instructions = 0
        self.heap_loads = 0
        self.other_loads = 0
        self.heap_stores = 0
        self.other_stores = 0
        self.calls = 0
        self.allocations = 0
        self.cycles = 0
        self.output: List[str] = []

    @property
    def loads(self) -> int:
        return self.heap_loads + self.other_loads

    @property
    def heap_load_fraction(self) -> float:
        return self.heap_loads / self.instructions if self.instructions else 0.0

    @property
    def other_load_fraction(self) -> float:
        return self.other_loads / self.instructions if self.instructions else 0.0

    def output_text(self) -> str:
        return "".join(self.output)

    def __repr__(self) -> str:
        return (
            "<ExecutionStats instrs={} heap_loads={} other_loads={} cycles={}>"
            .format(self.instructions, self.heap_loads, self.other_loads, self.cycles)
        )


class _Store:
    """Anything with a ``vars`` mapping — frames and the global area."""

    __slots__ = ("vars",)

    def __init__(self) -> None:
        self.vars: Dict[Symbol, object] = {}


class Frame(_Store):
    """One procedure activation."""

    __slots__ = ("temps", "activation_id", "base_addr", "_addrs")

    def __init__(self, n_temps: int, activation_id: int, base_addr: int):
        super().__init__()
        self.temps: List[object] = [None] * n_temps
        self.activation_id = activation_id
        self.base_addr = base_addr
        self._addrs: Dict[Symbol, int] = {}

    def var_addr(self, symbol: Symbol) -> int:
        addr = self._addrs.get(symbol)
        if addr is None:
            addr = self.base_addr + len(self._addrs) * 8
            self._addrs[symbol] = addr
        return addr


class Interpreter:
    """Executes a :class:`~repro.ir.cfg.ProgramIR`."""

    def __init__(
        self,
        program: ProgramIR,
        machine: Optional[MachineModel] = None,
        tracer: Optional[object] = None,
        max_steps: Optional[int] = None,
        deadline: Optional["guards.Deadline"] = None,
    ):
        self.program = program
        self.machine = machine
        self.tracer = tracer
        self.max_steps = max_steps
        self.deadline = deadline
        self.stats = ExecutionStats()
        self.heap = HeapAllocator()
        self.globals = _Store()
        self._global_addrs: Dict[Symbol, int] = {}
        self._activations = 0
        # Deferred cache simulation: loads append ``addr``, stores append
        # ``~addr`` (addresses are non-negative, so the complement is an
        # unambiguous store marker).  Replayed by ``run()``.
        self._mem_log: List[int] = []
        self._init_globals()

    # ------------------------------------------------------------------

    def _init_globals(self) -> None:
        for i, symbol in enumerate(self.program.checked.globals):
            assert symbol.type is not None
            self.globals.vars[symbol] = default_value(symbol.type)
            self._global_addrs[symbol] = _GLOBAL_BASE + i * 8

    def run(self) -> ExecutionStats:
        """Execute the module body and return the statistics."""
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 100_000))
        try:
            with obs.span("run.interp", module=self.program.checked.name):
                self.call_proc(MAIN_PROC, [])
        finally:
            sys.setrecursionlimit(old_limit)
            # Replay (and export counters) even when execution dies on a
            # trap or resource limit, so partial runs stay accounted for.
            if self.machine is not None and self._mem_log:
                with obs.span("run.cachesim", accesses=len(self._mem_log)):
                    self._replay_machine()
            self._export_metrics()
        self.stats.allocations = self.heap.allocations
        self.stats.cycles = self.stats.instructions + (
            self.machine.cycles if self.machine else 0
        )
        return self.stats

    def _replay_machine(self) -> None:
        """Feed the buffered access log through the machine model."""
        load = self.machine.load
        store = self.machine.store
        for entry in self._mem_log:
            if entry >= 0:
                load(entry)
            else:
                store(~entry)
        self._mem_log = []

    def _export_metrics(self) -> None:
        """Bulk-increment the registry counters for this run (one call
        per series, never per event, so the hot loop stays untouched)."""
        registry = metrics.registry()
        stats = self.stats
        registry.counter("run.interp.instructions").inc(stats.instructions)
        registry.counter("run.interp.heap_loads").inc(stats.heap_loads)
        registry.counter("run.interp.heap_stores").inc(stats.heap_stores)
        registry.counter("run.interp.other_loads").inc(stats.other_loads)
        registry.counter("run.interp.calls").inc(stats.calls)
        if self.machine is not None:
            cache = self.machine.cache
            registry.counter("run.cachesim.hits").inc(cache.hits)
            registry.counter("run.cachesim.misses").inc(cache.misses)

    # ------------------------------------------------------------------
    # Procedure execution

    def call_proc(self, name: str, args: List[object]) -> object:
        proc = self.program.procs[name]
        self._activations += 1
        self.stats.calls += 1
        frame = Frame(
            proc.n_temps,
            self._activations,
            _STACK_BASE + (self._activations % 4096) * 512,
        )
        checked = proc.checked
        for symbol, value in zip(checked.params, args):
            frame.vars[symbol] = value
        for symbol in checked.all_symbols:
            if symbol not in frame.vars and symbol.type is not None:
                frame.vars[symbol] = default_value(symbol.type)
        return self._run_frame(proc, frame)

    def _run_frame(self, proc: ProcIR, frame: Frame) -> object:
        stats = self.stats
        block = proc.entry
        max_steps = self.max_steps
        deadline = self.deadline
        last_poll = stats.instructions
        while True:
            for instr in block.instrs:
                if instr.counted:
                    stats.instructions += 1
                self._execute(instr, frame)
            terminator = block.terminator
            if terminator is None:
                raise M3RuntimeError(
                    "procedure {} fell off the end of block {}".format(
                        proc.name, block.name
                    )
                )
            stats.instructions += 1
            if max_steps is not None and stats.instructions > max_steps:
                raise ResourceLimitError(
                    "execution exceeded the step budget of {}".format(max_steps),
                    kind="steps",
                )
            # Poll the wall clock every ~2048 instructions: cheap enough
            # to leave on, frequent enough that runaway programs (and
            # runaway *interpretation*) die promptly.
            if stats.instructions - last_poll >= 2048:
                last_poll = stats.instructions
                if deadline is not None:
                    deadline.check()
                else:
                    guards.check_active()
            if isinstance(terminator, ins.Jump):
                block = terminator.target
            elif isinstance(terminator, ins.Branch):
                cond = frame.temps[terminator.cond.index]
                block = terminator.if_true if cond else terminator.if_false
            elif isinstance(terminator, ins.Return):
                if terminator.value is None:
                    return None
                return frame.temps[terminator.value.index]
            else:  # pragma: no cover
                raise M3RuntimeError("unknown terminator {!r}".format(terminator))

    # ------------------------------------------------------------------
    # Instruction dispatch

    def _execute(self, instr: ins.Instr, frame: Frame) -> None:
        handler = _HANDLERS.get(type(instr))
        if handler is None:  # pragma: no cover
            raise M3RuntimeError("unknown instruction {!r}".format(instr))
        handler(self, instr, frame)

    # -- scalar plumbing -------------------------------------------------

    def _ex_const(self, instr: ins.ConstInstr, frame: Frame) -> None:
        frame.temps[instr.dest.index] = instr.value

    def _ex_move(self, instr: ins.Move, frame: Frame) -> None:
        frame.temps[instr.dest.index] = frame.temps[instr.src.index]

    def _ex_loadvar(self, instr: ins.LoadVar, frame: Frame) -> None:
        symbol = instr.symbol
        if symbol.is_global:
            value = self.globals.vars[symbol]
            self.stats.other_loads += 1
            if self.machine:
                self._mem_log.append(self._global_addrs[symbol])
        else:
            value = frame.vars[symbol]
        frame.temps[instr.dest.index] = value

    def _ex_storevar(self, instr: ins.StoreVar, frame: Frame) -> None:
        symbol = instr.symbol
        value = frame.temps[instr.src.index]
        if symbol.is_global:
            self.globals.vars[symbol] = value
            self.stats.other_stores += 1
            if self.machine:
                self._mem_log.append(~self._global_addrs[symbol])
        else:
            frame.vars[symbol] = value

    def _ex_binop(self, instr: ins.BinOp, frame: Frame) -> None:
        a = frame.temps[instr.left.index]
        b = frame.temps[instr.right.index]
        frame.temps[instr.dest.index] = _BINOPS[instr.op](a, b)

    def _ex_unop(self, instr: ins.UnOp, frame: Frame) -> None:
        a = frame.temps[instr.operand.index]
        frame.temps[instr.dest.index] = (-a) if instr.op == "neg" else (not a)

    # -- heap loads/stores -----------------------------------------------

    def _heap_load(self, instr: ins.Instr, addr: int, value: object, frame: Frame) -> None:
        self.stats.heap_loads += 1
        if self.machine:
            self._mem_log.append(addr)
        if self.tracer:
            self.tracer.on_load(instr, addr, value, frame.activation_id)

    def _heap_store(self, instr: ins.Instr, addr: int, value: object, frame: Frame) -> None:
        self.stats.heap_stores += 1
        if self.machine:
            self._mem_log.append(~addr)
        if self.tracer:
            self.tracer.on_store(instr, addr, value, frame.activation_id)

    def _ex_loadfield(self, instr: ins.LoadField, frame: Frame) -> None:
        base = frame.temps[instr.base.index]
        if base is None:
            if instr.speculative:
                frame.temps[instr.dest.index] = None
                return
            raise M3RuntimeError("NIL dereference at {}".format(instr.loc))
        value = base.slots[instr.field]
        self._heap_load(instr, base.field_addr(instr.field), value, frame)
        frame.temps[instr.dest.index] = value

    def _ex_storefield(self, instr: ins.StoreField, frame: Frame) -> None:
        base = frame.temps[instr.base.index]
        if base is None:
            raise M3RuntimeError("NIL dereference at {}".format(instr.loc))
        value = frame.temps[instr.src.index]
        base.slots[instr.field] = value
        self._heap_store(instr, base.field_addr(instr.field), value, frame)

    def _ex_loadelem(self, instr: ins.LoadElem, frame: Frame) -> None:
        array = frame.temps[instr.base.index]
        index = frame.temps[instr.index.index]
        if instr.speculative:
            if (
                array is None
                or not isinstance(index, int)
                or index < 0
                or index >= len(array.data)
            ):
                frame.temps[instr.dest.index] = None
                return
        if array is None:
            raise M3RuntimeError("NIL array at {}".format(instr.loc))
        array.check_index(index)
        value = array.data[index]
        self._heap_load(instr, array.elem_addr(index), value, frame)
        frame.temps[instr.dest.index] = value

    def _ex_storeelem(self, instr: ins.StoreElem, frame: Frame) -> None:
        array = frame.temps[instr.base.index]
        if array is None:
            raise M3RuntimeError("NIL array at {}".format(instr.loc))
        index = frame.temps[instr.index.index]
        array.check_index(index)
        value = frame.temps[instr.src.index]
        array.data[index] = value
        self._heap_store(instr, array.elem_addr(index), value, frame)

    def _ex_loadrope_data(self, instr: ins.LoadDopeData, frame: Frame) -> None:
        dope = frame.temps[instr.base.index]
        if dope is None:
            if instr.speculative:
                frame.temps[instr.dest.index] = None
                return
            raise M3RuntimeError("NIL open array at {}".format(instr.loc))
        value = dope.data
        self._heap_load(instr, dope.data_addr, value, frame)
        frame.temps[instr.dest.index] = value

    def _ex_loadrope_count(self, instr: ins.LoadDopeCount, frame: Frame) -> None:
        dope = frame.temps[instr.base.index]
        if dope is None:
            if instr.speculative:
                frame.temps[instr.dest.index] = 0
                return
            raise M3RuntimeError("NIL open array at {}".format(instr.loc))
        value = dope.count
        self._heap_load(instr, dope.count_addr, value, frame)
        frame.temps[instr.dest.index] = value

    # -- indirect (handles and scalar REF cells) ---------------------------

    def _ex_loadind(self, instr: ins.LoadInd, frame: Frame) -> None:
        handle = frame.temps[instr.handle.index]
        if handle is None:
            if instr.speculative:
                frame.temps[instr.dest.index] = None
                return
            raise M3RuntimeError("NIL dereference at {}".format(instr.loc))
        if isinstance(handle, VarLoc):
            value = handle.store.vars[handle.symbol]
            self.stats.other_loads += 1
            if self.machine:
                self._mem_log.append(handle.addr)
        elif isinstance(handle, FieldLoc):
            value = handle.ref.slots[handle.field]
            self._heap_load(instr, handle.ref.field_addr(handle.field), value, frame)
        elif isinstance(handle, ElemLoc):
            handle.array.check_index(handle.index)
            value = handle.array.data[handle.index]
            self._heap_load(instr, handle.array.elem_addr(handle.index), value, frame)
        elif isinstance(handle, RecordRef):
            value = handle.slots[RecordRef.SCALAR_SLOT]
            self._heap_load(
                instr, handle.field_addr(RecordRef.SCALAR_SLOT), value, frame
            )
        else:
            raise M3RuntimeError("bad indirect load target {!r}".format(handle))
        frame.temps[instr.dest.index] = value

    def _ex_storeind(self, instr: ins.StoreInd, frame: Frame) -> None:
        handle = frame.temps[instr.handle.index]
        value = frame.temps[instr.src.index]
        if handle is None:
            raise M3RuntimeError("NIL dereference at {}".format(instr.loc))
        if isinstance(handle, VarLoc):
            handle.store.vars[handle.symbol] = value
            self.stats.other_stores += 1
            if self.machine:
                self._mem_log.append(~handle.addr)
        elif isinstance(handle, FieldLoc):
            handle.ref.slots[handle.field] = value
            self._heap_store(instr, handle.ref.field_addr(handle.field), value, frame)
        elif isinstance(handle, ElemLoc):
            handle.array.check_index(handle.index)
            handle.array.data[handle.index] = value
            self._heap_store(instr, handle.array.elem_addr(handle.index), value, frame)
        elif isinstance(handle, RecordRef):
            handle.slots[RecordRef.SCALAR_SLOT] = value
            self._heap_store(
                instr, handle.field_addr(RecordRef.SCALAR_SLOT), value, frame
            )
        else:
            raise M3RuntimeError("bad indirect store target {!r}".format(handle))

    # -- address-of --------------------------------------------------------

    def _ex_addrvar(self, instr: ins.AddrVar, frame: Frame) -> None:
        symbol = instr.symbol
        if symbol.is_global:
            loc = VarLoc(self.globals, symbol, self._global_addrs[symbol])
        else:
            loc = VarLoc(frame, symbol, frame.var_addr(symbol))
        frame.temps[instr.dest.index] = loc

    def _ex_addrfield(self, instr: ins.AddrField, frame: Frame) -> None:
        base = frame.temps[instr.base.index]
        if base is None:
            raise M3RuntimeError("NIL dereference at {}".format(instr.loc))
        frame.temps[instr.dest.index] = FieldLoc(base, instr.field)

    def _ex_addrelem(self, instr: ins.AddrElem, frame: Frame) -> None:
        array = frame.temps[instr.base.index]
        if array is None:
            raise M3RuntimeError("NIL array at {}".format(instr.loc))
        index = frame.temps[instr.index.index]
        array.check_index(index)
        frame.temps[instr.dest.index] = ElemLoc(array, index)

    # -- allocation ---------------------------------------------------------

    def _ex_newobject(self, instr: ins.NewObject, frame: Frame) -> None:
        addr = self.heap.allocate(ObjectRef.size_of(instr.object_type))
        frame.temps[instr.dest.index] = ObjectRef(instr.object_type, addr)

    def _ex_newrecord(self, instr: ins.NewRecord, frame: Frame) -> None:
        addr = self.heap.allocate(RecordRef.size_of(instr.ref_type))
        frame.temps[instr.dest.index] = RecordRef(instr.ref_type, addr)

    def _ex_newfixedarray(self, instr: ins.NewFixedArray, frame: Frame) -> None:
        target = instr.ref_type.target
        assert isinstance(target, ty.ArrayType) and target.length is not None
        addr = self.heap.allocate(ArrayRef.size_of(target.element, target.length))
        frame.temps[instr.dest.index] = ArrayRef(target.element, target.length, addr)

    def _ex_newopenarray(self, instr: ins.NewOpenArray, frame: Frame) -> None:
        target = instr.ref_type.target
        assert isinstance(target, ty.ArrayType) and target.is_open
        size = frame.temps[instr.size.index]
        if not isinstance(size, int) or size < 0:
            raise M3RuntimeError("bad open array size {!r}".format(size))
        data_addr = self.heap.allocate(ArrayRef.size_of(target.element, size))
        data = ArrayRef(target.element, size, data_addr)
        dope_addr = self.heap.allocate(DopeRef.SIZE)
        frame.temps[instr.dest.index] = DopeRef(data, dope_addr)

    # -- calls ---------------------------------------------------------------

    def _ex_call(self, instr: ins.Call, frame: Frame) -> None:
        args = [frame.temps[a.index] for a in instr.args]
        if self.machine:
            self.machine.cycles += self.machine.CALL_OVERHEAD
        result = self.call_proc(instr.proc_name, args)
        if instr.dest is not None:
            frame.temps[instr.dest.index] = result

    def _ex_callmethod(self, instr: ins.CallMethod, frame: Frame) -> None:
        receiver = frame.temps[instr.receiver.index]
        if receiver is None:
            raise M3RuntimeError("method call on NIL at {}".format(instr.loc))
        impl = receiver.otype.method_impl(instr.method_name)
        if impl is None:
            raise M3RuntimeError(
                "method {} unimplemented for {}".format(
                    instr.method_name, receiver.otype.name
                )
            )
        args = [frame.temps[a.index] for a in instr.args]
        if self.machine:
            self.machine.cycles += (
                self.machine.CALL_OVERHEAD + self.machine.METHOD_DISPATCH_OVERHEAD
            )
        result = self.call_proc(impl, [receiver] + args)
        if instr.dest is not None:
            frame.temps[instr.dest.index] = result

    def _ex_builtin(self, instr: ins.Builtin, frame: Frame) -> None:
        args = [frame.temps[a.index] for a in instr.args]
        result = _BUILTIN_IMPLS[instr.name](self, args, instr)
        if instr.dest is not None:
            frame.temps[instr.dest.index] = result

    def _ex_typetest(self, instr: ins.TypeTest, frame: Frame) -> None:
        value = frame.temps[instr.src.index]
        if value is None:
            result = True  # NIL is a member of every object type
        elif isinstance(value, ObjectRef):
            result = ty.is_subtype(value.otype, instr.target_type)
        else:
            result = False
        frame.temps[instr.dest.index] = result

    def _ex_narrow(self, instr: ins.NarrowChk, frame: Frame) -> None:
        value = frame.temps[instr.src.index]
        if value is not None:
            if not isinstance(value, ObjectRef) or not ty.is_subtype(
                value.otype, instr.target_type
            ):
                raise M3RuntimeError(
                    "NARROW to {} fails at {}".format(instr.target_type.name, instr.loc)
                )
        frame.temps[instr.dest.index] = value


# ----------------------------------------------------------------------
# Operator and builtin tables


def _div(a: int, b: int) -> int:
    if b == 0:
        raise M3RuntimeError("DIV by zero")
    return a // b


def _mod(a: int, b: int) -> int:
    if b == 0:
        raise M3RuntimeError("MOD by zero")
    return a % b


_BINOPS: Dict[str, Callable[[object, object], object]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "DIV": _div,
    "MOD": _mod,
    "=": lambda a, b: a == b,
    "#": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "AND": lambda a, b: bool(a and b),
    "OR": lambda a, b: bool(a or b),
}


def _bi_textchar(interp: Interpreter, args: List[object], instr: ins.Instr) -> object:
    text, index = args
    if not isinstance(index, int) or index < 0 or index >= len(text):
        raise M3RuntimeError("TextChar index {} out of range".format(index))
    return text[index]


def _bi_assert(interp: Interpreter, args: List[object], instr: ins.Instr) -> object:
    if not args[0]:
        raise M3RuntimeError("assertion failed at {}".format(instr.loc))
    return None


_BUILTIN_IMPLS: Dict[str, Callable[[Interpreter, List[object], ins.Instr], object]] = {
    "ORD": lambda i, a, _: ord(a[0]) if isinstance(a[0], str) else int(a[0]),
    "VAL": lambda i, a, _: chr(a[0]),
    "ABS": lambda i, a, _: abs(a[0]),
    "MIN": lambda i, a, _: min(a[0], a[1]),
    "MAX": lambda i, a, _: max(a[0], a[1]),
    "TextLen": lambda i, a, _: len(a[0]),
    "TextChar": _bi_textchar,
    "TextCat": lambda i, a, _: a[0] + a[1],
    "IntToText": lambda i, a, _: str(a[0]),
    "CharToText": lambda i, a, _: a[0],
    "PutText": lambda i, a, _: i.stats.output.append(a[0]),
    "PutInt": lambda i, a, _: i.stats.output.append(str(a[0])),
    "PutChar": lambda i, a, _: i.stats.output.append(a[0]),
    "ASSERT": _bi_assert,
}


_HANDLERS = {
    ins.ConstInstr: Interpreter._ex_const,
    ins.Move: Interpreter._ex_move,
    ins.LoadVar: Interpreter._ex_loadvar,
    ins.StoreVar: Interpreter._ex_storevar,
    ins.BinOp: Interpreter._ex_binop,
    ins.UnOp: Interpreter._ex_unop,
    ins.LoadField: Interpreter._ex_loadfield,
    ins.StoreField: Interpreter._ex_storefield,
    ins.LoadElem: Interpreter._ex_loadelem,
    ins.StoreElem: Interpreter._ex_storeelem,
    ins.LoadDopeData: Interpreter._ex_loadrope_data,
    ins.LoadDopeCount: Interpreter._ex_loadrope_count,
    ins.LoadInd: Interpreter._ex_loadind,
    ins.StoreInd: Interpreter._ex_storeind,
    ins.AddrVar: Interpreter._ex_addrvar,
    ins.AddrField: Interpreter._ex_addrfield,
    ins.AddrElem: Interpreter._ex_addrelem,
    ins.NewObject: Interpreter._ex_newobject,
    ins.NewRecord: Interpreter._ex_newrecord,
    ins.NewFixedArray: Interpreter._ex_newfixedarray,
    ins.NewOpenArray: Interpreter._ex_newopenarray,
    ins.Call: Interpreter._ex_call,
    ins.CallMethod: Interpreter._ex_callmethod,
    ins.Builtin: Interpreter._ex_builtin,
    ins.TypeTest: Interpreter._ex_typetest,
    ins.NarrowChk: Interpreter._ex_narrow,
}
