"""Runtime values and the simulated heap.

Scalars use native Python values (``int``, ``bool``, one-character ``str``
for CHAR, ``str`` for TEXT, ``None`` for NIL).  Heap entities carry a
simulated *address* so the limit study and the cache model see realistic
address streams:

* scalar slots are 8 bytes;
* CHAR array elements are 1 byte (so character buffers exercise cache
  lines like real text code does);
* an open array is a dope vector (data pointer + element count, two
  slots) pointing at a separate data array — indexing it costs an extra
  dope load, the paper's "Encapsulation" effect.
"""

from typing import Dict, List, Optional

from repro.lang.symtab import Symbol
from repro.lang.types import ArrayType, ObjectType, RecordType, RefType, Type, CHAR


class M3RuntimeError(Exception):
    """A checked runtime error (NIL deref, bad NARROW, bad subscript...)."""


SLOT_SIZE = 8


def element_size(element_type: Type) -> int:
    return 1 if element_type is CHAR else SLOT_SIZE


class HeapAllocator:
    """Bump allocator handing out simulated addresses."""

    def __init__(self, base: int = 0x10000):
        self._next = base
        self.allocated_bytes = 0
        self.allocations = 0

    def allocate(self, nbytes: int) -> int:
        nbytes = max(nbytes, SLOT_SIZE)
        # Keep allocations slot-aligned.
        nbytes = (nbytes + SLOT_SIZE - 1) // SLOT_SIZE * SLOT_SIZE
        addr = self._next
        self._next += nbytes
        self.allocated_bytes += nbytes
        self.allocations += 1
        return addr


class ObjectRef:
    """An allocated OBJECT instance: typed slots at field offsets."""

    __slots__ = ("otype", "slots", "addr", "_offsets")

    def __init__(self, otype: ObjectType, addr: int):
        self.otype = otype
        self.addr = addr
        fields = otype.all_fields()
        self.slots: Dict[str, object] = {
            name: default_value(ftype) for name, ftype in fields
        }
        self._offsets: Dict[str, int] = {
            name: i * SLOT_SIZE for i, (name, _) in enumerate(fields)
        }

    def field_addr(self, field: str) -> int:
        return self.addr + self._offsets[field]

    @staticmethod
    def size_of(otype: ObjectType) -> int:
        return max(1, len(otype.all_fields())) * SLOT_SIZE

    def __repr__(self) -> str:
        return "<{} @0x{:x}>".format(self.otype.name, self.addr)


class RecordRef:
    """A ``REF RECORD`` referent, or a scalar REF cell (one ``$value`` slot)."""

    __slots__ = ("rtype", "slots", "addr", "_offsets")

    SCALAR_SLOT = "$value"

    def __init__(self, ref_type: RefType, addr: int):
        self.rtype = ref_type
        self.addr = addr
        target = ref_type.target
        if isinstance(target, RecordType):
            self.slots = {name: default_value(t) for name, t in target.fields}
            self._offsets = {
                name: i * SLOT_SIZE for i, (name, _) in enumerate(target.fields)
            }
        else:
            self.slots = {self.SCALAR_SLOT: default_value(target)}
            self._offsets = {self.SCALAR_SLOT: 0}

    def field_addr(self, field: str) -> int:
        return self.addr + self._offsets[field]

    @staticmethod
    def size_of(ref_type: RefType) -> int:
        target = ref_type.target
        if isinstance(target, RecordType):
            return max(1, len(target.fields)) * SLOT_SIZE
        return SLOT_SIZE

    def __repr__(self) -> str:
        return "<record @0x{:x}>".format(self.addr)


class ArrayRef:
    """A heap array (fixed-size referent, or the data part of an open array)."""

    __slots__ = ("element_type", "data", "addr", "_esize")

    def __init__(self, element_type: Type, length: int, addr: int):
        self.element_type = element_type
        self.data: List[object] = [default_value(element_type)] * length
        self.addr = addr
        self._esize = element_size(element_type)

    def elem_addr(self, index: int) -> int:
        return self.addr + index * self._esize

    def check_index(self, index: int) -> None:
        if not isinstance(index, int) or index < 0 or index >= len(self.data):
            raise M3RuntimeError(
                "subscript {} out of range [0..{}]".format(index, len(self.data) - 1)
            )

    @staticmethod
    def size_of(element_type: Type, length: int) -> int:
        return max(1, length) * element_size(element_type)

    def __repr__(self) -> str:
        return "<array[{}] @0x{:x}>".format(len(self.data), self.addr)


class DopeRef:
    """The dope vector of an open array: (data pointer, count)."""

    __slots__ = ("data", "count", "addr")

    DATA_OFFSET = 0
    COUNT_OFFSET = SLOT_SIZE
    SIZE = 2 * SLOT_SIZE

    def __init__(self, data: ArrayRef, addr: int):
        self.data = data
        self.count = len(data.data)
        self.addr = addr

    @property
    def data_addr(self) -> int:
        return self.addr + self.DATA_OFFSET

    @property
    def count_addr(self) -> int:
        return self.addr + self.COUNT_OFFSET

    def __repr__(self) -> str:
        return "<dope[{}] @0x{:x}>".format(self.count, self.addr)


# ----------------------------------------------------------------------
# Location handles (VAR parameters, WITH bindings, scalar REF cells)


class VarLoc:
    """Handle to a variable slot (frame locals or the global area)."""

    __slots__ = ("store", "symbol", "addr")

    def __init__(self, store: "object", symbol: Symbol, addr: int):
        self.store = store  # a Frame or the interpreter's global store
        self.symbol = symbol
        self.addr = addr

    def __repr__(self) -> str:
        return "<&var {}>".format(self.symbol.name)


class FieldLoc:
    """Handle to a heap field."""

    __slots__ = ("ref", "field")

    def __init__(self, ref: object, field: str):
        self.ref = ref  # ObjectRef or RecordRef
        self.field = field

    def __repr__(self) -> str:
        return "<&{!r}.{}>".format(self.ref, self.field)


class ElemLoc:
    """Handle to an array element."""

    __slots__ = ("array", "index")

    def __init__(self, array: ArrayRef, index: int):
        self.array = array
        self.index = index

    def __repr__(self) -> str:
        return "<&{!r}[{}]>".format(self.array, self.index)


def default_value(t: Type) -> object:
    """Modula-3-style defaults: 0 / FALSE / NUL / empty text / NIL."""
    from repro.lang import types as ty

    if t is ty.INTEGER:
        return 0
    if t is ty.BOOLEAN:
        return False
    if t is ty.CHAR:
        return "\0"
    if t is ty.TEXT:
        return ""
    return None
