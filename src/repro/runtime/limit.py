"""The limit study of Section 3.5: dynamic redundancy and its causes.

The paper measures, per benchmark, the fraction of heap loads that are
*dynamically redundant* (Figure 9) before and after RLE, then manually
classifies the residue (Figure 10) into:

1. **Encapsulation** — implicit dope-vector loads the AST-level optimizer
   cannot see;
2. **Conditional** — partially redundant loads (redundant along some paths
   only), out of reach of RLE but not of PRE;
3. **Breakup** — the value was reloaded through a *different* access path
   (a copy-propagation failure);
4. **Alias failure** — RLE's availability was killed by a may-alias store
   that dynamically never touched the address: genuine TBAA imprecision;
5. **Rest** — everything else.

We reproduce the classification automatically by joining three facts per
redundant load occurrence: the instruction kind (dope or not), the static
reason RLE left the load in place (recorded by the optimizer), and
whether a store to the address actually intervened at run time.
"""

import enum
from typing import Dict, List, Optional, Tuple

from repro.ir import instructions as ins
from repro.ir.cfg import ProgramIR
from repro.obs import core as obs
from repro.obs import metrics
from repro.runtime.interp import ExecutionStats, Interpreter
from repro.runtime.machine import MachineModel
from repro.runtime.tracing import LoadStoreTracer


class Category(enum.Enum):
    ENCAPSULATION = "Encapsulated"
    CONDITIONAL = "Conditional"
    BREAKUP = "Breakup"
    ALIAS_FAILURE = "Alias failure"
    REST = "Rest"


#: Static statuses the optimizer records per heap-load instruction.
#: (See repro.opt.rle.RLEStatistics.load_status.)
STATUS_ELIMINATED = "eliminated"
STATUS_HOISTED = "hoisted"
STATUS_DOPE = "dope"
STATUS_PARTIAL = "partial"
STATUS_KILLED_STORE = "killed_store"
STATUS_KILLED_CALL = "killed_call"
STATUS_FRESH = "fresh"


class RedundancyReport:
    """Result of one limit-study run."""

    def __init__(self) -> None:
        self.total_heap_loads = 0
        self.redundant_loads = 0
        self.by_category: Dict[Category, int] = {c: 0 for c in Category}
        self.stats: Optional[ExecutionStats] = None

    @property
    def redundant_fraction(self) -> float:
        if self.total_heap_loads == 0:
            return 0.0
        return self.redundant_loads / self.total_heap_loads

    def category_fraction(self, category: Category) -> float:
        """Category count as a fraction of all heap loads (Figure 10's axis)."""
        if self.total_heap_loads == 0:
            return 0.0
        return self.by_category[category] / self.total_heap_loads

    def __repr__(self) -> str:
        return "<RedundancyReport {}/{} redundant>".format(
            self.redundant_loads, self.total_heap_loads
        )


class LimitStudy:
    """Runs a program under the tracer and classifies redundant loads.

    ``load_status`` maps heap-load instruction uid → static status string
    (the constants above); pass the optimizer's record for optimized
    programs, or ``None`` for unoptimized baselines (everything then
    classifies by kind and dynamics only).
    """

    def __init__(
        self,
        program: ProgramIR,
        load_status: Optional[Dict[int, str]] = None,
        machine: Optional[MachineModel] = None,
    ):
        self.program = program
        self.load_status = load_status or {}
        self.machine = machine
        self.report = RedundancyReport()

    def run(self) -> RedundancyReport:
        # Two separately-timed phases: ``limit.replay`` re-executes the
        # program under the tracer, buffering every redundant-load event;
        # ``limit.classify`` then joins the static/dynamic facts per
        # event.  Deferring classification does not change any count —
        # the category function only looks at per-event arguments.
        events: List[Tuple[ins.Instr, ins.Instr, bool]] = []
        tracer = LoadStoreTracer(
            on_redundant=lambda instr, prev, stored: events.append(
                (instr, prev, stored)))
        interp = Interpreter(self.program, machine=self.machine, tracer=tracer)
        with obs.span("limit.replay", module=self.program.checked.name):
            stats = interp.run()
        self.report.stats = stats
        self.report.total_heap_loads = tracer.total_loads
        self.report.redundant_loads = tracer.redundant_loads
        with obs.span("limit.classify", events=len(events)):
            for instr, prev, store_intervened in events:
                self._classify(instr, prev, store_intervened)
        self._export_metrics()
        return self.report

    def _export_metrics(self) -> None:
        """Figure 9/10 numbers as registry counters (bulk, per run)."""
        registry = metrics.registry()
        registry.counter("limit.loads.total").inc(self.report.total_heap_loads)
        registry.counter("limit.loads.redundant").inc(
            self.report.redundant_loads)
        for category, count in self.report.by_category.items():
            registry.counter(
                "limit.category", category=category.value).inc(count)

    # ------------------------------------------------------------------

    def _classify(
        self, instr: ins.Instr, prev_instr: ins.Instr, store_intervened: bool
    ) -> None:
        self.report.by_category[self._category(instr, prev_instr, store_intervened)] += 1

    def _category(
        self, instr: ins.Instr, prev_instr: ins.Instr, store_intervened: bool
    ) -> Category:
        if instr.is_dope:
            return Category.ENCAPSULATION
        status = self.load_status.get(instr.uid)
        if status == STATUS_PARTIAL:
            return Category.CONDITIONAL
        # The same address was last loaded through a different lexical
        # path: a copy/naming failure, not an analysis failure.
        if prev_instr.ap is not None and instr.ap is not None and prev_instr.ap != instr.ap:
            return Category.BREAKUP
        if status == STATUS_KILLED_STORE and not store_intervened:
            return Category.ALIAS_FAILURE
        return Category.REST
