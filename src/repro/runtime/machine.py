"""Machine cost model: cycles = instructions + load latency.

The paper measured simulated execution times on a DEC Alpha 3000-500
(21064) with the primary cache enlarged to 32 KB to suppress conflict
noise.  We keep exactly the part of that machine RLE interacts with: every
executed instruction costs one cycle, and each memory *load* additionally
costs a hit or miss latency determined by a direct-mapped cache.  Stores
update the cache but add no cycles (write-buffer assumption).

Eliminating a redundant load therefore saves ``1 + latency`` cycles — the
same first-order effect the paper's Figure 8 reports.
"""

from typing import Optional


class CacheSim:
    """Direct-mapped cache over simulated byte addresses."""

    def __init__(self, size: int = 32 * 1024, line_size: int = 32):
        assert size % line_size == 0
        self.size = size
        self.line_size = line_size
        self.n_lines = size // line_size
        self._tags = [-1] * self.n_lines
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch *addr*; returns True on hit."""
        line = addr // self.line_size
        index = line % self.n_lines
        if self._tags[index] == line:
            self.hits += 1
            return True
        self._tags[index] = line
        self.misses += 1
        return False

    def reset(self) -> None:
        self._tags = [-1] * self.n_lines
        self.hits = 0
        self.misses = 0


class MachineModel:
    """Accumulates cycles from instruction counts and cache behaviour."""

    #: extra cycles for a load that hits the primary cache
    HIT_LATENCY = 2
    #: extra cycles for a load that misses (21064-ish miss penalty)
    MISS_LATENCY = 12
    #: call/return overhead beyond the call instruction itself: argument
    #: shuffling, callee-save spills/refills, jsr/ret latency
    CALL_OVERHEAD = 10
    #: extra dispatch cost of a method invocation (type descriptor and
    #: method-suite loads before the indirect jump)
    METHOD_DISPATCH_OVERHEAD = 6

    def __init__(self, cache: Optional[CacheSim] = None):
        self.cache = cache or CacheSim()
        self.cycles = 0

    def instruction(self, count: int = 1) -> None:
        self.cycles += count

    def load(self, addr: int) -> None:
        if self.cache.access(addr):
            self.cycles += self.HIT_LATENCY
        else:
            self.cycles += self.MISS_LATENCY

    def store(self, addr: int) -> None:
        self.cache.access(addr)

    def reset(self) -> None:
        self.cycles = 0
        self.cache.reset()
