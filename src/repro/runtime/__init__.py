"""Execution substrate: heap model, IR interpreter, machine simulator.

This package replaces the paper's measurement stack — the Alpha 21064
workstation simulator and the ATOM binary instrumenter — with:

* :mod:`repro.runtime.values` — heap objects with real (simulated)
  addresses and per-field offsets;
* :mod:`repro.runtime.interp` — an IR interpreter that counts executed
  instructions, heap loads and other (global/stack) loads, and exposes a
  load/store trace hook (the ATOM substitute);
* :mod:`repro.runtime.machine` — a load-latency cost model with a direct
  mapped cache (the paper simulated a 32 KB primary cache);
* :mod:`repro.runtime.tracing` — trace recording utilities;
* :mod:`repro.runtime.limit` — the dynamic redundant-load limit study of
  Section 3.5, including the five-way classification of Figure 10.
"""

from repro.runtime.values import (
    ObjectRef,
    RecordRef,
    ArrayRef,
    DopeRef,
    VarLoc,
    FieldLoc,
    ElemLoc,
    M3RuntimeError,
)
from repro.runtime.interp import Interpreter, ExecutionStats
from repro.runtime.machine import CacheSim, MachineModel
from repro.runtime.tracing import LoadStoreTracer
from repro.runtime.limit import LimitStudy, RedundancyReport, Category

__all__ = [
    "ObjectRef",
    "RecordRef",
    "ArrayRef",
    "DopeRef",
    "VarLoc",
    "FieldLoc",
    "ElemLoc",
    "M3RuntimeError",
    "Interpreter",
    "ExecutionStats",
    "CacheSim",
    "MachineModel",
    "LoadStoreTracer",
    "LimitStudy",
    "RedundancyReport",
    "Category",
]
