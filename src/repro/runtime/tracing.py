"""Load/store trace recording — the ATOM substitute.

The paper instrumented every load in the executable with ATOM, recording
address and value, to find *dynamically redundant* loads.  Our tracer
receives the same events from the interpreter.  It does not retain the
full trace (which would be huge); instead it maintains exactly the state
the redundancy definition needs:

    "A redundant load is when two consecutive loads of the same address
     load the same value in the same procedure activation."

For each activation we keep ``address -> (value, instr uid of the last
load)``; a global per-address store clock lets the classifier distinguish
"no store intervened" (a spurious alias kill) from "a store wrote the
same value back".
"""

from typing import Callable, Dict, Optional, Tuple

from repro.ir import instructions as ins


class LoadStoreTracer:
    """Observes heap loads/stores; feeds the limit study.

    ``on_redundant`` (if given) is called for every dynamically redundant
    load occurrence with ``(instr, prev_instr, store_intervened)``.
    """

    def __init__(
        self,
        on_redundant: Optional[
            Callable[[ins.Instr, ins.Instr, bool], None]
        ] = None,
    ):
        # (activation, address) -> (value, last loading instr)
        self._last_load: Dict[Tuple[int, int], Tuple[object, ins.Instr]] = {}
        # address -> monotonically increasing store clock
        self._store_clock: Dict[int, int] = {}
        # (activation, address) -> store clock observed at last load
        self._load_clock: Dict[Tuple[int, int], int] = {}
        self._clock = 0
        self.on_redundant = on_redundant

        self.total_loads = 0
        self.redundant_loads = 0
        # per-instruction dynamic counts
        self.loads_by_instr: Dict[int, int] = {}
        self.redundant_by_instr: Dict[int, int] = {}

    # -- interpreter hook API -------------------------------------------

    def on_load(self, instr: ins.Instr, addr: int, value: object, activation: int) -> None:
        self.total_loads += 1
        uid = instr.uid
        self.loads_by_instr[uid] = self.loads_by_instr.get(uid, 0) + 1
        key = (activation, addr)
        previous = self._last_load.get(key)
        if previous is not None and _same_value(previous[0], value):
            self.redundant_loads += 1
            self.redundant_by_instr[uid] = self.redundant_by_instr.get(uid, 0) + 1
            if self.on_redundant is not None:
                store_clock = self._store_clock.get(addr, 0)
                seen_clock = self._load_clock.get(key, 0)
                store_intervened = store_clock > seen_clock
                self.on_redundant(instr, previous[1], store_intervened)
        self._last_load[key] = (value, instr)
        self._load_clock[key] = self._store_clock.get(addr, 0)

    def on_store(self, instr: ins.Instr, addr: int, value: object, activation: int) -> None:
        self._clock += 1
        self._store_clock[addr] = self._clock

    # -- results -----------------------------------------------------------

    @property
    def redundant_fraction(self) -> float:
        """Redundant loads as a fraction of all traced heap loads."""
        return self.redundant_loads / self.total_loads if self.total_loads else 0.0


def _same_value(a: object, b: object) -> bool:
    """ATOM compared register bits; we compare values exactly.

    References compare by identity, scalars by equality; ``True == 1``
    style cross-type coincidences are rejected by the type check.
    """
    if type(a) is not type(b):
        return False
    if isinstance(a, (int, bool, str)) or a is None:
        return a == b
    return a is b
