"""Soundness and consistency oracles for fuzzed MiniM3 programs.

:func:`check_program` takes one program (generated or plain source) and
runs every cross-check the repository's correctness argument rests on:

* **compile** — generated programs are type-correct by construction, so
  a :class:`~repro.lang.errors.CompileError` is itself a finding;
* **refinement** — on every pair of heap-reference APs the analyses must
  refine monotonically: ``SMFieldTypeRefs ⟹ FieldTypeDecl ⟹ TypeDecl``
  (a finer analysis reporting an alias the coarser one denies breaks the
  hierarchy of Section 2), and each closed-world answer must imply the
  open-world one;
* **engine** — the partition-based fast pair counter must agree exactly
  with the reference O(e²) loop on all three analyses;
* **dynamic soundness** — run the program under the tracer, record which
  access paths hit each heap address, and require every dynamically
  co-located pair to be a may-alias under *all* analyses (the paper's
  fundamental property).  Runtime traps and resource limits truncate the
  trace; the prefix is still checked;
* **cache** — clearing the memo cache must not change any answer, and
  the hit/miss counters must stay consistent with the cache size.

Each phase runs inside its own bulkhead: an unexpected exception becomes
a ``crash`` violation carrying the traceback, and later phases still
run.  The report is JSON-serialisable for the batch runner.
"""

import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro import AliasPairCounter, Program, compile_program
from repro.ir.access_path import AccessPath, strip_index
from repro.lang.errors import CompileError, ResourceLimitError
from repro.qa.generator import GeneratedProgram
from repro.runtime import Interpreter
from repro.runtime.values import M3RuntimeError

__all__ = ["OracleViolation", "OracleReport", "check_program"]

#: Closed-world analysis names, coarse to fine.
LEVELS = ("TypeDecl", "FieldTypeDecl", "SMFieldTypeRefs")

#: Cap on distinct reference paths entering the all-pairs phases, so one
#: pathological program cannot stall a whole fuzzing batch.
MAX_STATIC_PATHS = 150


@dataclass
class OracleViolation:
    """One broken invariant, with enough context to triage."""

    kind: str      # compile | refinement | open-world | engine |
    #                dynamic-soundness | cache | crash
    phase: str     # compile | static | engine | run | dynamic | cache
    message: str
    details: Dict[str, str] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "phase": self.phase,
            "message": self.message,
            "details": dict(self.details),
        }


@dataclass
class OracleReport:
    """Everything :func:`check_program` learned about one program."""

    name: str
    seed: Optional[int] = None
    violations: List[OracleViolation] = field(default_factory=list)
    phases: List[str] = field(default_factory=list)
    ran: bool = False        # interpreter reached END without trapping
    trapped: bool = False    # M3RuntimeError or resource limit hit
    references: int = 0      # distinct static heap-reference paths
    trace_pairs: int = 0     # dynamically co-located AP pairs checked

    @property
    def ok(self) -> bool:
        return not self.violations

    def first_kind(self) -> Optional[str]:
        return self.violations[0].kind if self.violations else None

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "ok": self.ok,
            "phases": list(self.phases),
            "ran": self.ran,
            "trapped": self.trapped,
            "references": self.references,
            "trace_pairs": self.trace_pairs,
            "violations": [v.to_json() for v in self.violations],
        }


@contextmanager
def _bulkhead(report: OracleReport, phase: str):
    """Run one phase; unexpected exceptions become ``crash`` violations."""
    report.phases.append(phase)
    try:
        yield
    except (KeyboardInterrupt, SystemExit):
        raise
    except ResourceLimitError as exc:
        report.violations.append(
            OracleViolation(
                kind="resource",
                phase=phase,
                message=str(exc),
                details={"limit": exc.kind},
            )
        )
    except Exception as exc:  # the bulkhead: isolate, record, continue
        report.violations.append(
            OracleViolation(
                kind="crash",
                phase=phase,
                message="{}: {}".format(type(exc).__name__, exc),
                details={"traceback": traceback.format_exc()},
            )
        )


def check_program(
    source: Union[str, GeneratedProgram],
    name: str = "<fuzz>",
    seed: Optional[int] = None,
    max_steps: int = 400_000,
) -> OracleReport:
    """Run every oracle over one program and report all violations."""
    if isinstance(source, GeneratedProgram):
        if seed is None:
            seed = source.seed
        name = source.name
        text = source.render()
    else:
        text = source
    report = OracleReport(name=name, seed=seed)

    program: Optional[Program] = None
    report.phases.append("compile")
    try:
        program = compile_program(text, name)
    except CompileError as exc:
        report.violations.append(
            OracleViolation(
                kind="compile",
                phase="compile",
                message=str(exc),
                details={"rendered": exc.render(text)},
            )
        )
        return report
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:
        report.violations.append(
            OracleViolation(
                kind="crash",
                phase="compile",
                message="{}: {}".format(type(exc).__name__, exc),
                details={"traceback": traceback.format_exc()},
            )
        )
        return report

    analyses: Dict[Tuple[str, bool], object] = {}
    paths: List[AccessPath] = []

    with _bulkhead(report, "static"):
        for level in LEVELS:
            for open_world in (False, True):
                analyses[(level, open_world)] = program.analysis(level, open_world)
        paths = _reference_paths(program)
        report.references = len(paths)
        _check_refinement(report, analyses, paths)

    with _bulkhead(report, "engine"):
        _check_engines(report, program)

    trace: Dict[int, set] = {}
    with _bulkhead(report, "run"):
        trace = _run_traced(report, program, max_steps)

    if analyses:
        with _bulkhead(report, "dynamic"):
            _check_dynamic(report, analyses, trace)

        with _bulkhead(report, "cache"):
            _check_cache(report, analyses, paths)

    return report


# ----------------------------------------------------------------------
# Phase implementations


def _reference_paths(program: Program) -> List[AccessPath]:
    from repro.analysis.alias_pairs import collect_heap_references

    seen: Dict[AccessPath, None] = {}
    for aps in collect_heap_references(program.base().program).values():
        for ap in aps:
            seen.setdefault(ap, None)
    return list(seen)[:MAX_STATIC_PATHS]


def _check_refinement(
    report: OracleReport, analyses: Dict[Tuple[str, bool], object], paths: List[AccessPath]
) -> None:
    """Finer ⟹ coarser on every pair, and closed ⟹ open per level."""
    for i, p in enumerate(paths):
        for q in paths[i:]:  # include the diagonal: reflexivity matters
            for open_world in (False, True):
                answers = [
                    analyses[(level, open_world)].may_alias_canonical(p, q)
                    for level in LEVELS
                ]
                # answers = [coarse, mid, fine]: fine ⟹ mid ⟹ coarse.
                for fine in range(len(LEVELS) - 1, 0, -1):
                    if answers[fine] and not answers[fine - 1]:
                        report.violations.append(
                            OracleViolation(
                                kind="refinement",
                                phase="static",
                                message=(
                                    "{} says alias but {} says no for {} / {}".format(
                                        LEVELS[fine], LEVELS[fine - 1], p, q
                                    )
                                ),
                                details={
                                    "open_world": str(open_world),
                                    "p": str(p),
                                    "q": str(q),
                                },
                            )
                        )
            for level in LEVELS:
                closed = analyses[(level, False)].may_alias_canonical(p, q)
                if closed and not analyses[(level, True)].may_alias_canonical(p, q):
                    report.violations.append(
                        OracleViolation(
                            kind="open-world",
                            phase="static",
                            message=(
                                "closed-world {} aliases {} / {} but "
                                "open-world denies it".format(level, p, q)
                            ),
                            details={"level": level, "p": str(p), "q": str(q)},
                        )
                    )


def _check_engines(report: OracleReport, program: Program) -> None:
    """Fast counter ≡ reference counter, per analysis level."""
    base = program.base().program
    for level in LEVELS:
        try:
            AliasPairCounter(
                base, program.analysis(level), engine="differential"
            ).count()
        except AssertionError as exc:
            report.violations.append(
                OracleViolation(
                    kind="engine",
                    phase="engine",
                    message=str(exc),
                    details={"level": level},
                )
            )


class _Tracer:
    """Per heap address, every (stripped) AP that touched it."""

    def __init__(self) -> None:
        self.by_address: Dict[int, set] = {}

    def _note(self, instr, addr):
        if instr.ap is not None:
            self.by_address.setdefault(addr, set()).add(strip_index(instr.ap))

    def on_load(self, instr, addr, value, activation):
        self._note(instr, addr)

    def on_store(self, instr, addr, value, activation):
        self._note(instr, addr)


def _run_traced(report: OracleReport, program: Program, max_steps: int) -> Dict[int, set]:
    tracer = _Tracer()
    interp = Interpreter(program.base().program, tracer=tracer, max_steps=max_steps)
    try:
        interp.run()
        report.ran = True
    except (M3RuntimeError, ResourceLimitError):
        # Traps and budget hits truncate the trace; the prefix that did
        # execute is real behaviour and still constrains the analyses.
        report.trapped = True
    return tracer.by_address


def _check_dynamic(
    report: OracleReport, analyses: Dict[Tuple[str, bool], object], trace: Dict[int, set]
) -> None:
    """Every dynamically co-located AP pair must be a may-alias."""
    for addr, aps in trace.items():
        if len(aps) < 2:
            continue
        ordered = sorted(aps, key=str)
        for i, p in enumerate(ordered):
            for q in ordered[i + 1 :]:
                report.trace_pairs += 1
                for (level, open_world), analysis in analyses.items():
                    if not analysis.may_alias_canonical(p, q):
                        report.violations.append(
                            OracleViolation(
                                kind="dynamic-soundness",
                                phase="dynamic",
                                message=(
                                    "{} and {} hit address {:#x} but {}{} "
                                    "says no-alias".format(
                                        p,
                                        q,
                                        addr,
                                        level,
                                        " (open)" if open_world else "",
                                    )
                                ),
                                details={
                                    "level": level,
                                    "open_world": str(open_world),
                                    "p": str(p),
                                    "q": str(q),
                                },
                            )
                        )


def _check_cache(
    report: OracleReport, analyses: Dict[Tuple[str, bool], object], paths: List[AccessPath]
) -> None:
    """cache_clear() must not change answers; stats must stay coherent."""
    sample = paths[:24]
    for (level, open_world), analysis in analyses.items():
        before = {
            (p.uid, q.uid): analysis.may_alias_canonical(p, q)
            for p in sample
            for q in sample
        }
        analysis.cache_clear()
        stats = analysis.cache_stats()
        if stats["hits"] or stats["misses"] or stats["size"]:
            report.violations.append(
                OracleViolation(
                    kind="cache",
                    phase="cache",
                    message="cache_clear left non-zero stats: {}".format(stats),
                    details={"level": level},
                )
            )
        changed = [
            key
            for key, answer in before.items()
            if analysis.may_alias_canonical(*_by_uid(sample, key)) != answer
        ]
        if changed:
            report.violations.append(
                OracleViolation(
                    kind="cache",
                    phase="cache",
                    message="{} answers changed after cache_clear on {}{}".format(
                        len(changed), level, " (open)" if open_world else ""
                    ),
                    details={"level": level, "open_world": str(open_world)},
                )
            )
        stats = analysis.cache_stats()
        if stats["size"] > stats["misses"]:
            report.violations.append(
                OracleViolation(
                    kind="cache",
                    phase="cache",
                    message="cache size {} exceeds miss count {}".format(
                        stats["size"], stats["misses"]
                    ),
                    details={"level": level},
                )
            )


def _by_uid(sample: List[AccessPath], key: Tuple[int, int]) -> Tuple[AccessPath, AccessPath]:
    by = {p.uid: p for p in sample}
    return by[key[0]], by[key[1]]
