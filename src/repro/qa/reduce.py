"""Delta-debugging reducer for failing generated programs.

Given a :class:`~repro.qa.generator.GeneratedProgram` and a predicate
"does this still fail the same way?", shrink the program to a (locally)
minimal reproducer with the classic ddmin algorithm, applied list by
list over the program's parts: body statements first (most numerous,
most removable), then procedures, prologue, globals and type
declarations, and finally the epilogue.

The predicate sees re-rendered candidate programs; shrinking a
declaration a later statement still uses simply makes the candidate fail
to *compile*, which the predicate rejects (a compile failure is not "the
same failure" unless the original failure was one), so ddmin naturally
backs off.  Every candidate evaluation is bounded by the caller's
resource guards; the reducer itself caps total predicate probes.

:func:`write_crash_bundle` persists the evidence: original source,
reduced source, and the JSON oracle report, in one directory per
failure.
"""

import json
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from repro.qa.generator import GeneratedProgram
from repro.qa.oracles import OracleReport

__all__ = ["reduce_program", "write_crash_bundle"]

#: Part lists eligible for reduction, in reduction order.
_PART_ORDER = ("body", "procs", "prologue", "var_decls", "type_decls", "epilogue")

#: Hard cap on predicate evaluations per :func:`reduce_program` call.
MAX_PROBES = 400


def reduce_program(
    program: GeneratedProgram,
    still_fails: Callable[[GeneratedProgram], bool],
    max_probes: int = MAX_PROBES,
) -> GeneratedProgram:
    """Shrink *program* while ``still_fails`` holds; returns the smallest
    variant found (the input itself if nothing could be removed)."""
    budget = [max_probes]
    current = program
    changed = True
    while changed and budget[0] > 0:
        changed = False
        for part in _PART_ORDER:
            items: List[str] = list(getattr(current, part))
            if not items:
                continue
            kept = _ddmin(
                items,
                lambda subset: still_fails(current.with_parts(**{part: subset})),
                budget,
            )
            if len(kept) < len(items):
                current = current.with_parts(**{part: kept})
                changed = True
    return current


def _ddmin(
    items: Sequence[str],
    fails: Callable[[Sequence[str]], bool],
    budget: List[int],
) -> List[str]:
    """Zeller's ddmin over one list: find a 1-minimal failing subset."""
    items = list(items)
    n = 2
    while len(items) >= 2 and budget[0] > 0:
        chunks = _split(items, n)
        reduced = False
        # Try each chunk alone ...
        for chunk in chunks:
            if budget[0] <= 0:
                break
            budget[0] -= 1
            if fails(chunk):
                items = list(chunk)
                n = 2
                reduced = True
                break
        if reduced:
            continue
        # ... then each complement.
        if n > 2:
            for i in range(len(chunks)):
                if budget[0] <= 0:
                    break
                complement = [x for j, c in enumerate(chunks) if j != i for x in c]
                budget[0] -= 1
                if fails(complement):
                    items = complement
                    n = max(n - 1, 2)
                    reduced = True
                    break
            if reduced:
                continue
        if n >= len(items):
            break
        n = min(len(items), 2 * n)
    # Final one-minimality pass: drop single items while possible.
    i = 0
    while i < len(items) and budget[0] > 0:
        candidate = items[:i] + items[i + 1 :]
        if candidate:
            budget[0] -= 1
            if fails(candidate):
                items = candidate
                continue
        i += 1
    return items


def _split(items: List[str], n: int) -> List[List[str]]:
    """*items* in *n* roughly equal contiguous chunks (no empties)."""
    n = min(n, len(items))
    size, extra = divmod(len(items), n)
    out: List[List[str]] = []
    start = 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out


def write_crash_bundle(
    directory: Path,
    original: GeneratedProgram,
    reduced: Optional[GeneratedProgram],
    report: OracleReport,
) -> Path:
    """Persist one failure as ``<dir>/seed-<n>/{original,reduced}.m3 +
    report.json``; returns the bundle directory."""
    bundle = Path(directory) / "seed-{}".format(report.seed)
    bundle.mkdir(parents=True, exist_ok=True)
    (bundle / "original.m3").write_text(original.render())
    if reduced is not None:
        (bundle / "reduced.m3").write_text(reduced.render())
    (bundle / "report.json").write_text(
        json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
    )
    return bundle
