"""Resource guards: wall-clock deadlines and budget plumbing.

The QA harness runs adversarial programs through every layer of the
stack; any of them can loop or blow up combinatorially.  Guards turn
such hangs into clean, catchable failures:

* :class:`Deadline` — a monotonic wall-clock budget whose
  :meth:`~Deadline.check` raises
  :class:`~repro.lang.errors.ResourceLimitError` once expired;
* :func:`guarded` — a context manager installing a deadline on a
  process-wide stack, so deep machinery (the interpreter's block loop,
  the alias-pair counting loops, the memoised query layer) can poll
  :func:`check_active` without threading a handle through every call;
* step budgets (``Interpreter(max_steps=...)``) and parser nesting caps
  (:data:`repro.lang.parser.MAX_NESTING_DEPTH`) live with their owners
  but raise the same ``ResourceLimitError``.

``check_active`` is called on hot paths, so the no-guard case is a
single truthiness test of a per-thread list.

This module must stay import-light (stdlib + :mod:`repro.lang.errors`
only): the runtime and analysis layers import it at module load.
"""

import threading
import time
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.lang.errors import ResourceLimitError

__all__ = [
    "Deadline",
    "ResourceLimitError",
    "active_deadline",
    "check_active",
    "guarded",
]


class Deadline:
    """A wall-clock budget anchored at construction time."""

    __slots__ = ("seconds", "label", "_expires_at")

    def __init__(self, seconds: float, label: str = "operation"):
        self.seconds = seconds
        self.label = label
        self._expires_at = time.monotonic() + seconds

    def remaining(self) -> float:
        return max(0.0, self._expires_at - time.monotonic())

    def expired(self) -> bool:
        return time.monotonic() >= self._expires_at

    def check(self) -> None:
        if self.expired():
            raise ResourceLimitError(
                "{} exceeded its wall-clock limit of {:.3g}s".format(
                    self.label, self.seconds
                ),
                kind="wall-clock",
            )

    def __repr__(self) -> str:
        return "<Deadline {} {:.3g}s ({:.3g}s left)>".format(
            self.label, self.seconds, self.remaining()
        )


class _GuardState(threading.local):
    """Per-thread deadline stack (innermost last).

    Thread-local, not a module list: the serve daemon's HTTP transport
    runs one request per handler thread, and a request's deadline must
    never fire inside another request's analysis.  The empty case stays
    one attribute load + truthiness test.
    """

    def __init__(self):
        self.stack: List[Deadline] = []


_state = _GuardState()


def active_deadline() -> Optional[Deadline]:
    """The innermost installed deadline, or None (this thread only)."""
    stack = _state.stack
    return stack[-1] if stack else None


def check_active() -> None:
    """Raise if any installed deadline has expired; no-op otherwise.

    Checks the whole stack so an outer (shorter) deadline still fires
    while an inner guard is installed.
    """
    stack = _state.stack
    if stack:
        for deadline in stack:
            deadline.check()


@contextmanager
def guarded(seconds: Optional[float], label: str = "operation") -> Iterator[Optional[Deadline]]:
    """Install a wall-clock deadline for the duration of the block.

    ``seconds=None`` installs nothing (so callers can make guarding
    configurable without branching).  Guards nest; the effective limit
    is the tightest one on the stack.
    """
    if seconds is None:
        yield None
        return
    deadline = Deadline(seconds, label)
    _state.stack.append(deadline)
    try:
        yield deadline
    finally:
        _state.stack.remove(deadline)
