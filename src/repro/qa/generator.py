"""Deterministic MiniM3 program generator for soundness fuzzing.

Design constraints, in order:

1. **Deterministic** — a seed fully determines the program.  The batch
   runner numbers programs ``base_seed + i`` and any failure names the
   seed that reproduces it.
2. **Type-correct by construction** — the generator tracks declared
   types and only emits assignments whose right side is a subtype of the
   left, field accesses that exist on the declared type, and constant
   subscripts within bounds (via ``MOD``).  A generated program failing
   to compile is itself an oracle violation (phase ``compile``).
3. **Terminating** — loops are ``FOR`` with small constant bounds and
   generated procedures never call anything, so every program halts well
   inside the interpreter step budget.
4. **Adversarial for TBAA** — the shapes that historically break
   unification-based analyses are over-represented: object hierarchies
   with sibling subtypes, supertype variables holding subtype values
   (the ``TypeRefsTable`` asymmetry), field writes through ``VAR``
   parameters (AddressTaken), ``WITH`` handles, open arrays behind dope
   vectors, and occasional ``NIL`` stores (traps are tolerated by the
   dynamic oracle).

The output is a :class:`GeneratedProgram` holding its *parts* (type
declarations, globals, procedures, prologue/body/epilogue statements)
rather than flat text, so the delta-debugging reducer can drop parts and
re-render without re-parsing.
"""

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["GenConfig", "GeneratedProgram", "generate_program"]

ARRAY_LEN = 8  # fixed length of the open integer array every program has


@dataclass(frozen=True)
class GenConfig:
    """Size bounds for one generated program."""

    max_object_types: int = 4   # besides the fixed REF types
    max_ref_vars: int = 4
    max_int_vars: int = 3
    max_procs: int = 3
    max_stmts: int = 22         # top-level statements in the body
    max_depth: int = 2          # IF/FOR/WITH nesting
    allow_methods: bool = True
    allow_nil: bool = True      # NIL stores (later derefs may trap)


@dataclass
class GeneratedProgram:
    """A generated module, kept as parts so the reducer can shrink it."""

    seed: int
    name: str
    type_decls: List[str] = field(default_factory=list)
    var_decls: List[str] = field(default_factory=list)
    procs: List[str] = field(default_factory=list)
    prologue: List[str] = field(default_factory=list)   # allocations
    body: List[str] = field(default_factory=list)
    epilogue: List[str] = field(default_factory=list)   # checksum output

    def render(self) -> str:
        parts: List[str] = ["MODULE {};".format(self.name), ""]
        if self.type_decls:
            parts.append("TYPE")
            parts.extend("  " + d for d in self.type_decls)
            parts.append("")
        if self.var_decls:
            parts.append("VAR")
            parts.extend("  " + d for d in self.var_decls)
            parts.append("")
        for proc in self.procs:
            parts.append(proc)
            parts.append("")
        parts.append("BEGIN")
        for stmt in self.prologue + self.body + self.epilogue:
            parts.extend("  " + line for line in stmt.splitlines())
        parts.append("END {}.".format(self.name))
        return "\n".join(parts) + "\n"

    def statement_count(self) -> int:
        return len(self.prologue) + len(self.body) + len(self.epilogue)

    def with_parts(self, **kwargs) -> "GeneratedProgram":
        """A copy with some part lists replaced (for the reducer)."""
        return replace(
            self,
            **{k: list(v) for k, v in kwargs.items()},
        )


# ----------------------------------------------------------------------
# Internal model of the declared world


@dataclass
class _ObjType:
    name: str
    parent: Optional["_ObjType"]
    int_fields: List[str]
    ref_fields: List[Tuple[str, "_ObjType"]]  # (field name, field type)

    def all_int_fields(self) -> List[str]:
        out = list(self.int_fields)
        if self.parent is not None:
            out = self.parent.all_int_fields() + out
        return out

    def all_ref_fields(self) -> List[Tuple[str, "_ObjType"]]:
        out = list(self.ref_fields)
        if self.parent is not None:
            out = self.parent.all_ref_fields() + out
        return out

    def is_subtype_of(self, other: "_ObjType") -> bool:
        node: Optional[_ObjType] = self
        while node is not None:
            if node is other:
                return True
            node = node.parent
        return False


class _Generator:
    def __init__(self, seed: int, config: GenConfig):
        self.rng = random.Random(seed)
        self.config = config
        self.seed = seed
        self.obj_types: List[_ObjType] = []
        self.ref_vars: Dict[str, _ObjType] = {}
        self.int_vars: List[str] = []
        self.proc_calls: List[str] = []  # call templates, e.g. "Poke{} ({}, {});"

    # -- declarations ---------------------------------------------------

    def _gen_types(self, out: GeneratedProgram) -> None:
        rng = self.rng
        n = rng.randint(2, max(2, self.config.max_object_types))
        field_serial = 0
        for i in range(n):
            name = "T{}".format(i)
            parent = rng.choice([None] + self.obj_types) if self.obj_types else None
            n_ints = rng.randint(1, 2)
            int_fields = []
            for _ in range(n_ints):
                int_fields.append("f{}".format(field_serial))
                field_serial += 1
            obj = _ObjType(name, parent, int_fields, [])
            # Ref fields may point anywhere already declared, or at the
            # type itself (linked structures).
            for _ in range(rng.randint(0, 2)):
                target = rng.choice(self.obj_types + [obj])
                obj.ref_fields.append(("r{}".format(field_serial), target))
                field_serial += 1
            self.obj_types.append(obj)
        for obj in self.obj_types:
            fields = ["{}: INTEGER;".format(f) for f in obj.int_fields]
            fields += ["{}: {};".format(f, t.name) for f, t in obj.ref_fields]
            super_part = obj.parent.name + " " if obj.parent is not None else ""
            out.type_decls.append(
                "{} = {}OBJECT {} END;".format(obj.name, super_part, " ".join(fields))
            )
        out.type_decls.append("Arr = REF ARRAY OF INTEGER;")
        out.type_decls.append("Cell = REF INTEGER;")

    def _gen_vars(self, out: GeneratedProgram) -> None:
        rng = self.rng
        n_refs = rng.randint(2, max(2, self.config.max_ref_vars))
        for i in range(n_refs):
            obj = rng.choice(self.obj_types)
            self.ref_vars["v{}".format(i)] = obj
        for name, obj in self.ref_vars.items():
            out.var_decls.append("{}: {};".format(name, obj.name))
        self.int_vars = ["x{}".format(i) for i in range(rng.randint(1, self.config.max_int_vars))]
        out.var_decls.append("{}: INTEGER;".format(", ".join(self.int_vars)))
        out.var_decls.append("arr: Arr;")
        out.var_decls.append("cell: Cell;")

    def _gen_procs(self, out: GeneratedProgram) -> None:
        rng = self.rng
        n = rng.randint(0, self.config.max_procs)
        for i in range(n):
            kind = rng.choice(["poke", "get", "bump"])
            obj = rng.choice(self.obj_types)
            if kind == "poke":
                target = rng.choice(obj.all_int_fields())
                out.procs.append(
                    "PROCEDURE Poke{i} (o: {t}; k: INTEGER) =\n"
                    "BEGIN\n"
                    "  o.{f} := k;\n"
                    "END Poke{i};".format(i=i, t=obj.name, f=target)
                )
                self.proc_calls.append(
                    ("Poke{} ({{ref:{}}}, {{int}});".format(i, obj.name))
                )
            elif kind == "get":
                fields = obj.all_int_fields()
                expr = " + ".join("o." + f for f in fields[:2])
                out.procs.append(
                    "PROCEDURE Get{i} (o: {t}): INTEGER =\n"
                    "BEGIN\n"
                    "  RETURN {e};\n"
                    "END Get{i};".format(i=i, t=obj.name, e=expr)
                )
                self.proc_calls.append(
                    "{{intvar}} := Get{} ({{ref:{}}});".format(i, obj.name)
                )
            else:
                out.procs.append(
                    "PROCEDURE Bump{i} (VAR v: INTEGER) =\n"
                    "BEGIN\n"
                    "  v := v + 1;\n"
                    "END Bump{i};".format(i=i)
                )
                self.proc_calls.append("Bump{} ({{intdes}});".format(i))

    # -- expression/designator pools -------------------------------------

    def _vars_of_subtype(self, obj: _ObjType) -> List[str]:
        """Variables whose value is assignable to a slot of type *obj*."""
        return [n for n, t in self.ref_vars.items() if t.is_subtype_of(obj)]

    def _ref_designators(self, obj: _ObjType) -> List[str]:
        """Designators of declared type ⊆ *obj* (variables and ref fields)."""
        out = self._vars_of_subtype(obj)
        for name, t in self.ref_vars.items():
            for f, ft in t.all_ref_fields():
                if ft.is_subtype_of(obj):
                    out.append("{}.{}".format(name, f))
        return out

    def _int_designator(self) -> str:
        rng = self.rng
        choices: List[str] = list(self.int_vars)
        choices.append("cell^")
        choices.append("arr^[{}]".format(rng.randint(0, ARRAY_LEN - 1)))
        if self.int_vars:
            choices.append(
                "arr^[{} MOD {}]".format(rng.choice(self.int_vars), ARRAY_LEN)
            )
        for name, t in self.ref_vars.items():
            for f in t.all_int_fields():
                choices.append("{}.{}".format(name, f))
        # One-hop paths through ref fields (may trap on NIL; tolerated).
        for name, t in self.ref_vars.items():
            for f, ft in t.all_ref_fields():
                ints = ft.all_int_fields()
                if ints:
                    choices.append("{}.{}.{}".format(name, f, rng.choice(ints)))
        return rng.choice(choices)

    def _int_expr(self) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.35:
            return str(rng.randint(0, 9))
        if roll < 0.85:
            return self._int_designator()
        return "{} + {}".format(self._int_designator(), rng.randint(1, 3))

    def _fill(self, template: str) -> Optional[str]:
        """Instantiate a proc-call template; None if no value fits."""
        rng = self.rng
        text = template
        while "{" in text:
            start = text.index("{")
            end = text.index("}", start)
            hole = text[start + 1 : end]
            if hole.startswith("ref:"):
                obj = next(t for t in self.obj_types if t.name == hole[4:])
                pool = self._vars_of_subtype(obj)
                if not pool:
                    return None
                value = rng.choice(pool)
            elif hole == "int":
                value = self._int_expr()
            elif hole == "intvar":
                value = rng.choice(self.int_vars)
            else:  # intdes
                value = self._int_designator()
            text = text[:start] + value + text[end + 1 :]
        return text

    # -- statements ------------------------------------------------------

    def _stmt(self, depth: int) -> str:
        rng = self.rng
        kinds = ["int-assign"] * 4 + ["ref-assign"] * 2 + ["field-ref-assign"]
        if self.proc_calls:
            kinds += ["call"] * 2
        if depth > 0:
            kinds += ["if", "for", "with"]
        kind = rng.choice(kinds)
        if kind == "int-assign":
            return "{} := {};".format(self._int_designator(), self._int_expr())
        if kind == "ref-assign":
            name = rng.choice(list(self.ref_vars))
            return "{} := {};".format(name, self._ref_value(self.ref_vars[name]))
        if kind == "field-ref-assign":
            with_ref_fields = [
                (n, f, ft)
                for n, t in self.ref_vars.items()
                for f, ft in t.all_ref_fields()
            ]
            if not with_ref_fields:
                return "{} := {};".format(self._int_designator(), self._int_expr())
            name, f, ft = rng.choice(with_ref_fields)
            return "{}.{} := {};".format(name, f, self._ref_value(ft))
        if kind == "call":
            stmt = self._fill(rng.choice(self.proc_calls))
            if stmt is None:
                return "{} := {};".format(self._int_designator(), self._int_expr())
            return stmt
        if kind == "if":
            cond = self._cond()
            then_body = self._stmts(depth - 1, rng.randint(1, 3))
            text = "IF {} THEN\n{}\n".format(cond, _indent(then_body))
            if rng.random() < 0.4:
                else_body = self._stmts(depth - 1, rng.randint(1, 2))
                text += "ELSE\n{}\n".format(_indent(else_body))
            return text + "END;"
        if kind == "for":
            body = self._stmts(depth - 1, rng.randint(1, 3))
            return "FOR k{} := 0 TO {} DO\n{}\nEND;".format(
                rng.randint(0, 9), rng.randint(1, 5), _indent(body)
            )
        # with
        binding = self._int_designator()
        body = self._stmts(depth - 1, rng.randint(1, 2))
        return "WITH w{} = {} DO\n{}\nEND;".format(
            rng.randint(0, 9), binding, _indent(body)
        )

    def _ref_value(self, obj: _ObjType) -> str:
        """An expression assignable to a slot of declared type *obj*."""
        rng = self.rng
        pool = self._ref_designators(obj)
        subtypes = [t for t in self.obj_types if t.is_subtype_of(obj)]
        roll = rng.random()
        if pool and roll < 0.6:
            return rng.choice(pool)
        if self.config.allow_nil and roll > 0.97:
            return "NIL"
        target = rng.choice(subtypes)
        inits = []
        ints = target.all_int_fields()
        if ints and rng.random() < 0.7:
            inits.append("{} := {}".format(rng.choice(ints), rng.randint(0, 9)))
        args = ", ".join([target.name] + inits)
        return "NEW ({})".format(args)

    def _cond(self) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.5:
            return "{} {} {}".format(
                self._int_designator(), rng.choice(["<", ">", "#", "="]), self._int_expr()
            )
        if roll < 0.8:
            # Reference comparison: MiniM3 only compares related types.
            names = list(self.ref_vars)
            a = rng.choice(names)
            ta = self.ref_vars[a]
            related = [
                n
                for n, t in self.ref_vars.items()
                if t.is_subtype_of(ta) or ta.is_subtype_of(t)
            ]
            b = rng.choice(related)
            return "{} {} {}".format(a, rng.choice(["=", "#"]), b)
        # Type test: always safe, exercises the hierarchy at run time.
        name, t = rng.choice(list(self.ref_vars.items()))
        subtypes = [o for o in self.obj_types if o.is_subtype_of(t)]
        return "ISTYPE ({}, {})".format(name, rng.choice(subtypes).name)

    def _stmts(self, depth: int, count: int) -> str:
        return "\n".join(self._stmt(depth) for _ in range(count))

    # -- program ---------------------------------------------------------

    def generate(self) -> GeneratedProgram:
        rng = self.rng
        out = GeneratedProgram(self.seed, "Fuzz{}".format(self.seed))
        self._gen_types(out)
        self._gen_vars(out)
        self._gen_procs(out)

        # Prologue: allocate every global so early statements can
        # dereference them; supertype variables deliberately receive
        # subtype values when possible (the SMTypeRefs asymmetry).
        for name, obj in self.ref_vars.items():
            subtypes = [t for t in self.obj_types if t.is_subtype_of(obj)]
            target = rng.choice(subtypes)
            inits = []
            ints = target.all_int_fields()
            if ints:
                inits.append("{} := {}".format(ints[0], rng.randint(1, 9)))
            out.prologue.append(
                "{} := NEW ({});".format(name, ", ".join([target.name] + inits))
            )
        out.prologue.append("arr := NEW (Arr, {});".format(ARRAY_LEN))
        out.prologue.append("cell := NEW (Cell);")
        # Link every reachable ref field so one-hop paths rarely trap:
        # prefer sharing an existing variable (creates real aliasing for
        # the dynamic oracle), else allocate a fresh object.
        for name, t in self.ref_vars.items():
            for f, ft in t.all_ref_fields():
                pool = self._vars_of_subtype(ft)
                if pool and rng.random() < 0.8:
                    value = rng.choice(pool)
                else:
                    value = "NEW ({})".format(ft.name)
                out.prologue.append("{}.{} := {};".format(name, f, value))

        n_stmts = rng.randint(5, max(5, self.config.max_stmts))
        for _ in range(n_stmts):
            out.body.append(self._stmt(self.config.max_depth))

        checksum = " + ".join(
            self.int_vars
            + ["cell^"]
            + ["arr^[{}]".format(i) for i in range(0, ARRAY_LEN, 3)]
        )
        out.epilogue.append("PutInt ({});".format(checksum))
        out.epilogue.append("PutChar (' ');")
        return out


def _indent(text: str, by: str = "  ") -> str:
    return "\n".join(by + line for line in text.splitlines())


def generate_program(seed: int, config: Optional[GenConfig] = None) -> GeneratedProgram:
    """Generate the (unique) program of *seed* under *config*."""
    return _Generator(seed, config or GenConfig()).generate()
