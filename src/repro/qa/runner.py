"""Fault-isolating batch runner behind ``repro fuzz``.

Generates *count* programs (seeds ``base_seed .. base_seed+count-1``),
runs the full oracle battery over each inside its own bulkhead, and
aggregates a machine-readable report:

* one :class:`FailureRecord` per failing seed — phase, violation kind,
  message, a stable traceback digest for de-duplication, and (when an
  output directory is given) the path of a crash bundle holding the
  original program, a delta-debugged minimal reproducer and the JSON
  oracle report;
* a :class:`FuzzReport` with counts and wall-clock, serialised to
  ``fuzz-report.json`` in the output directory.

One seed crashing, hanging or violating an oracle never aborts the rest
of the batch: each program runs under a wall-clock guard
(:func:`~repro.qa.guards.guarded`) and an interpreter step budget, and
every exception except ``KeyboardInterrupt``/``SystemExit`` is recorded
and skipped past.

``jobs > 1`` fans the seed range out over a ``multiprocessing`` pool in
contiguous chunks.  Each chunk keeps the same per-seed bulkheads; crash
bundles are written by the workers (bundle paths embed the seed, so
writers never collide) and the merged report is deterministic — chunk
results are combined in seed order, so the same seeds produce the same
report regardless of ``jobs`` (only ``duration`` and the progress
callback, which needs an in-process caller, differ).
"""

import hashlib
import json
import math
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro.obs import core as obs
from repro.qa.generator import GenConfig, GeneratedProgram, generate_program
from repro.qa.guards import guarded
from repro.qa.oracles import OracleReport, check_program
from repro.qa.reduce import reduce_program, write_crash_bundle

__all__ = ["FailureRecord", "FuzzReport", "run_fuzz", "default_jobs"]

#: Default per-program wall-clock bulkhead, seconds.
PER_PROGRAM_SECONDS = 10.0

#: Default interpreter step budget per traced run.
MAX_STEPS = 400_000


@dataclass
class FailureRecord:
    """One failing seed, with enough to triage and reproduce."""

    seed: int
    name: str
    phase: str      # oracle phase, or "harness" for runner-level crashes
    kind: str       # violation kind, or exception class name
    message: str
    digest: str     # stable hash of (phase, kind, message shape)
    bundle: Optional[str] = None   # crash-bundle directory, if written
    reduced_statements: Optional[int] = None

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "name": self.name,
            "phase": self.phase,
            "kind": self.kind,
            "message": self.message,
            "digest": self.digest,
            "bundle": self.bundle,
            "reduced_statements": self.reduced_statements,
        }


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing batch."""

    base_seed: int
    count: int
    checked: int = 0
    ran_clean: int = 0      # interpreter reached END
    trapped: int = 0        # runtime trap or budget hit (tolerated)
    failures: List[FailureRecord] = field(default_factory=list)
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def distinct_digests(self) -> List[str]:
        seen: List[str] = []
        for f in self.failures:
            if f.digest not in seen:
                seen.append(f.digest)
        return seen

    def to_json(self) -> dict:
        return {
            "base_seed": self.base_seed,
            "count": self.count,
            "checked": self.checked,
            "ran_clean": self.ran_clean,
            "trapped": self.trapped,
            "ok": self.ok,
            "distinct_digests": self.distinct_digests(),
            "failures": [f.to_json() for f in self.failures],
            "duration_seconds": round(self.duration, 3),
        }


def failure_digest(phase: str, kind: str, message: str) -> str:
    """Stable 12-hex digest identifying one failure *shape*.

    Digits are masked out of the message so the same defect found at
    different seeds, addresses or line numbers dedupes to one digest.
    """
    shape = "".join("#" if ch.isdigit() else ch for ch in message)
    blob = "{}|{}|{}".format(phase, kind, shape).encode()
    return hashlib.sha256(blob).hexdigest()[:12]


def default_jobs() -> int:
    """Worker processes used when callers pass ``jobs=None``."""
    return os.cpu_count() or 1


def run_fuzz(
    count: int,
    base_seed: int = 0,
    out_dir: Optional[Path] = None,
    per_program_seconds: Optional[float] = PER_PROGRAM_SECONDS,
    max_steps: int = MAX_STEPS,
    reduce: bool = True,
    config: Optional[GenConfig] = None,
    progress: Optional[Callable[[int, OracleReport], None]] = None,
    jobs: Optional[int] = 1,
) -> FuzzReport:
    """Fuzz *count* seeded programs; never aborts on a single failure.

    ``jobs=1`` (the default) keeps the exact in-process path (required
    for the ``progress`` callback); ``jobs=None`` uses
    :func:`default_jobs`, i.e. ``os.cpu_count()``.
    """
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    started = time.monotonic()
    if jobs == 1 or count <= 1:
        report = _fuzz_chunk(
            count, base_seed, out_dir, per_program_seconds, max_steps,
            reduce, config, progress,
        )
    else:
        report = _fuzz_parallel(
            count, base_seed, out_dir, per_program_seconds, max_steps,
            reduce, config, jobs,
        )
    report.duration = time.monotonic() - started
    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / "fuzz-report.json").write_text(
            json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
        )
    return report


def _fuzz_chunk(
    count: int,
    base_seed: int,
    out_dir: Optional[Path],
    per_program_seconds: Optional[float],
    max_steps: int,
    reduce: bool,
    config: Optional[GenConfig],
    progress: Optional[Callable[[int, OracleReport], None]] = None,
) -> FuzzReport:
    """One contiguous seed range, in-process (the pre-``jobs`` body)."""
    report = FuzzReport(base_seed=base_seed, count=count)
    with obs.span("fuzz.batch", base_seed=base_seed, count=count):
        for i in range(count):
            seed = base_seed + i
            with obs.span("fuzz.seed", seed=seed) as seed_span:
                record = _check_one(
                    seed, out_dir, per_program_seconds, max_steps, reduce,
                    config, report, progress,
                )
                if record is not None:
                    seed_span.annotate(failure=record.kind)
                    report.failures.append(record)
    return report


def _fuzz_chunk_task(task: Tuple) -> FuzzReport:
    """Pool entry point (top-level so it pickles); no progress callback."""
    count, base_seed, out_dir, per_program_seconds, max_steps, reduce, config = task
    return _fuzz_chunk(
        count, base_seed, Path(out_dir) if out_dir else None,
        per_program_seconds, max_steps, reduce, config,
    )


def _fuzz_parallel(
    count: int,
    base_seed: int,
    out_dir: Optional[Path],
    per_program_seconds: Optional[float],
    max_steps: int,
    reduce: bool,
    config: Optional[GenConfig],
    jobs: int,
) -> FuzzReport:
    """Fan contiguous seed chunks over a pool and merge by seed order."""
    chunk = math.ceil(count / jobs)
    tasks = []
    lo = 0
    while lo < count:
        n = min(chunk, count - lo)
        tasks.append((n, base_seed + lo, str(out_dir) if out_dir else None,
                      per_program_seconds, max_steps, reduce, config))
        lo += n
    with obs.span("fuzz.batch", base_seed=base_seed, count=count, jobs=jobs):
        with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
            chunks = list(pool.imap_unordered(_fuzz_chunk_task, tasks))
    report = FuzzReport(base_seed=base_seed, count=count)
    for part in sorted(chunks, key=lambda r: r.base_seed):
        report.checked += part.checked
        report.ran_clean += part.ran_clean
        report.trapped += part.trapped
        report.failures.extend(part.failures)
    report.failures.sort(key=lambda f: f.seed)
    return report


def _check_one(
    seed: int,
    out_dir: Optional[Path],
    per_program_seconds: Optional[float],
    max_steps: int,
    reduce: bool,
    config: Optional[GenConfig],
    report: FuzzReport,
    progress: Optional[Callable[[int, OracleReport], None]],
) -> Optional[FailureRecord]:
    """One seed inside its bulkhead; a FailureRecord if it failed."""
    program: Optional[GeneratedProgram] = None
    try:
        program = generate_program(seed, config)
        with guarded(per_program_seconds, "fuzz seed {}".format(seed)):
            oracle = check_program(program, seed=seed, max_steps=max_steps)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:  # bulkhead: even harness bugs only cost one seed
        return FailureRecord(
            seed=seed,
            name=program.name if program is not None else "Fuzz{}".format(seed),
            phase="harness",
            kind=type(exc).__name__,
            message=str(exc),
            digest=failure_digest("harness", type(exc).__name__, str(exc)),
        )
    report.checked += 1
    if oracle.ran:
        report.ran_clean += 1
    elif oracle.trapped:
        report.trapped += 1
    if progress is not None:
        progress(seed, oracle)
    if oracle.ok:
        return None

    first = oracle.violations[0]
    record = FailureRecord(
        seed=seed,
        name=oracle.name,
        phase=first.phase,
        kind=first.kind,
        message=first.message,
        digest=failure_digest(first.phase, first.kind, first.message),
    )
    if out_dir is not None:
        reduced = None
        if reduce:
            reduced = _reduce_failure(
                program, first.kind, per_program_seconds, max_steps
            )
        bundle = write_crash_bundle(Path(out_dir), program, reduced, oracle)
        record.bundle = str(bundle)
        if reduced is not None:
            record.reduced_statements = reduced.statement_count()
    return record


def _reduce_failure(
    program: GeneratedProgram,
    kind: str,
    per_program_seconds: Optional[float],
    max_steps: int,
) -> Optional[GeneratedProgram]:
    """Delta-debug *program* down to the same violation kind."""

    def still_fails(candidate: GeneratedProgram) -> bool:
        try:
            with guarded(per_program_seconds, "reduce"):
                oracle = check_program(candidate, max_steps=max_steps)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            return False
        return any(v.kind == kind for v in oracle.violations)

    try:
        return reduce_program(program, still_fails)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception:
        return None  # the reducer must never lose the original evidence
