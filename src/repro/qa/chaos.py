"""Deterministic, seeded fault injection: the ``repro chaos`` harness.

The paper's value proposition is soundness — a wrong may-alias bit
miscompiles the program — so the serving stack must keep returning
*correct* answers (or clean, typed errors) when the infrastructure
around it misbehaves.  This module turns infrastructure faults into
routine, reproducible inputs:

* **Injection points** are named seams registered in :data:`POINTS` and
  compiled into the stack (fact-store I/O, partition corruption,
  session compiles, slow request handlers, corpus-worker kills,
  client-visible connection drops).  Each site calls :func:`fire`,
  which is a single ``is None`` check when no plan is armed — the
  production hot path pays nothing.
* A :class:`FaultPlan` declares *which* points fire and *when*: per-rule
  probability, trigger counts, skip-first-N, and exact context matching
  (e.g. only shard 1, only attempt 0).  Every rule draws from its own
  ``random.Random`` stream derived from ``(plan seed, rule index,
  point)``, so firing decisions are deterministic per point and
  independent of interleaving across points.
* :func:`run_chaos` drives the serve daemon or the corpus pipeline
  under a named plan and asserts the core invariant: **every answer
  that leaves the system is differential-pinned correct, or a typed
  error — never silently wrong, never a crash.**

Effects are *realistic* faults, not bespoke exceptions: fact-store
points raise :class:`InjectedIOError` (an ``OSError``), compile points
raise :class:`InjectedFault` (a ``RuntimeError``), slow handlers sleep
in small increments that poll the active :mod:`repro.qa.guards`
deadline (so per-request deadlines fire exactly as they would against a
genuinely hung handler), and corpus-worker kills call ``os._exit`` —
the same signal-free death a OOM-killed worker produces.

Plans cross process boundaries two ways: forked corpus workers inherit
the armed plan through module state, and subprocess daemons pick it up
from the ``REPRO_CHAOS_PLAN`` environment variable on first ``fire``.

Counters: every firing bumps ``chaos.injected`` labelled by point (plus
the unlabelled total), so chaos runs are observable like any workload.
"""

import hashlib
import json
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs import metrics

__all__ = [
    "POINTS",
    "ChaosPoint",
    "FaultRule",
    "FaultPlan",
    "InjectedFault",
    "InjectedIOError",
    "active_plan",
    "install_plan",
    "clear_plan",
    "armed",
    "fire",
    "built_in_plans",
    "plan_spec",
    "run_chaos",
    "register_metrics",
]

#: Environment variable carrying a JSON-encoded plan into subprocesses.
PLAN_ENV_VAR = "REPRO_CHAOS_PLAN"


class InjectedFault(RuntimeError):
    """A chaos-injected internal failure (compile crash, handler bug)."""


class InjectedIOError(OSError):
    """A chaos-injected I/O failure (disk error, unreadable partition)."""


@dataclass(frozen=True)
class ChaosPoint:
    """One named injection seam and the fault it simulates."""

    name: str
    effect: str  # "io_error" | "error" | "sleep" | "exit" | "mark"
    description: str


#: Every injection point compiled into the stack.  ``mark`` effects
#: return the fired rule to the call site, which applies a
#: site-specific corruption (e.g. truncating a partition file) that the
#: production code must then survive.
POINTS: Dict[str, ChaosPoint] = {
    point.name: point
    for point in (
        ChaosPoint("factstore.load", "io_error",
                   "FactStore.load raises OSError (disk read failure)"),
        ChaosPoint("factstore.store", "io_error",
                   "FactStore.store raises OSError (disk write failure)"),
        ChaosPoint("factstore.corrupt", "mark",
                   "partition bytes are truncated mid-byte before a read"),
        ChaosPoint("session.compile", "error",
                   "SessionManager's cold compile dies mid-build"),
        ChaosPoint("daemon.handler", "sleep",
                   "request handler stalls (deadline-polling sleep, "
                   "arg = seconds)"),
        ChaosPoint("client.drop", "mark",
                   "client-visible connection drop before the request "
                   "reaches the daemon"),
        ChaosPoint("corpus.worker_kill", "exit",
                   "forked corpus worker dies mid-shard via os._exit "
                   "(arg = exit code)"),
        ChaosPoint("corpus.shard_hang", "sleep",
                   "corpus shard hangs (plain sleep, arg = seconds)"),
        ChaosPoint("history.append", "mark",
                   "a bench-ledger append is torn mid-line (writer died "
                   "mid-write); readers must skip it"),
        ChaosPoint("tracestore.append", "mark",
                   "a trace-store segment append is torn mid-line "
                   "(writer died mid-write); readers must skip it and "
                   "serving must not degrade"),
    )
}


@dataclass(frozen=True)
class FaultRule:
    """When one injection point fires.

    ``probability`` draws from the rule's own seeded stream;
    ``times``/``after`` bound and offset firings by eligible encounter
    count; ``match`` restricts to call sites whose context kwargs equal
    the given strings (e.g. ``{"shard": "1", "attempt": "0"}``);
    ``arg`` parameterises the effect (sleep seconds, exit code).
    """

    point: str
    probability: float = 1.0
    times: Optional[int] = None
    after: int = 0
    arg: Optional[float] = None
    match: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self):
        if self.point not in POINTS:
            raise ValueError("unknown injection point {!r}; known: {}".format(
                self.point, sorted(POINTS)))
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        # Accept a plain dict for convenience; store a hashable tuple.
        if isinstance(self.match, dict):
            object.__setattr__(
                self, "match",
                tuple(sorted((str(k), str(v)) for k, v in self.match.items())))

    def matches(self, context: Dict[str, str]) -> bool:
        return all(context.get(key) == value for key, value in self.match)

    def to_json(self) -> dict:
        obj = {"point": self.point, "probability": self.probability}
        if self.times is not None:
            obj["times"] = self.times
        if self.after:
            obj["after"] = self.after
        if self.arg is not None:
            obj["arg"] = self.arg
        if self.match:
            obj["match"] = dict(self.match)
        return obj

    @classmethod
    def from_json(cls, obj: dict) -> "FaultRule":
        return cls(
            point=obj["point"],
            probability=obj.get("probability", 1.0),
            times=obj.get("times"),
            after=obj.get("after", 0),
            arg=obj.get("arg"),
            match=tuple(sorted(
                (str(k), str(v))
                for k, v in obj.get("match", {}).items())),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative set of fault rules."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()
    name: str = "custom"

    def __post_init__(self):
        if isinstance(self.rules, list):
            object.__setattr__(self, "rules", tuple(self.rules))

    def with_seed(self, seed: int) -> "FaultPlan":
        return FaultPlan(seed=seed, rules=self.rules, name=self.name)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "rules": [rule.to_json() for rule in self.rules],
        }

    @classmethod
    def from_json(cls, obj: dict) -> "FaultPlan":
        return cls(
            seed=int(obj.get("seed", 0)),
            rules=tuple(FaultRule.from_json(r) for r in obj.get("rules", ())),
            name=obj.get("name", "custom"),
        )


def _rule_stream(seed: int, index: int, point: str) -> random.Random:
    """One independent, deterministic RNG stream per (plan, rule)."""
    digest = hashlib.sha256(
        "{}:{}:{}".format(seed, index, point).encode()).hexdigest()
    return random.Random(int(digest[:16], 16))


class _ArmedPlan:
    """A plan plus its mutable firing state (streams, counters)."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._streams = [
            _rule_stream(plan.seed, i, rule.point)
            for i, rule in enumerate(plan.rules)
        ]
        self._encounters = [0] * len(plan.rules)
        self._fired = [0] * len(plan.rules)

    def decide(self, point: str,
               context: Dict[str, str]) -> Optional[FaultRule]:
        """The first rule that fires for this encounter, or None."""
        with self._lock:
            for i, rule in enumerate(self.plan.rules):
                if rule.point != point or not rule.matches(context):
                    continue
                self._encounters[i] += 1
                if self._encounters[i] <= rule.after:
                    continue
                if rule.times is not None and self._fired[i] >= rule.times:
                    continue
                if rule.probability < 1.0 and \
                        self._streams[i].random() >= rule.probability:
                    continue
                self._fired[i] += 1
                return rule
        return None

    def injected(self) -> Dict[str, int]:
        """Total firings per point (stable over reruns of one battery)."""
        with self._lock:
            out: Dict[str, int] = {}
            for rule, fired in zip(self.plan.rules, self._fired):
                if fired:
                    out[rule.point] = out.get(rule.point, 0) + fired
            return out


#: The process-wide armed plan.  ``None`` keeps every ``fire`` call a
#: single attribute load + ``is None`` test.
_ARMED: Optional[_ArmedPlan] = None

#: Set once the environment has been consulted, so an unarmed process
#: pays the ``os.environ`` lookup at most once.
_ENV_CHECKED = False


def install_plan(plan: FaultPlan, env: bool = False) -> None:
    """Arm *plan* process-wide; ``env=True`` also exports it so
    subprocess daemons and spawned workers inherit it."""
    global _ARMED, _ENV_CHECKED
    _ARMED = _ArmedPlan(plan)
    _ENV_CHECKED = True
    if env:
        os.environ[PLAN_ENV_VAR] = json.dumps(plan.to_json(), sort_keys=True)


def clear_plan(env: bool = True) -> None:
    """Disarm chaos (and scrub the environment unless told otherwise)."""
    global _ARMED, _ENV_CHECKED
    _ARMED = None
    _ENV_CHECKED = True
    if env:
        os.environ.pop(PLAN_ENV_VAR, None)


class armed:
    """Context manager: arm *plan* for the duration of the block."""

    def __init__(self, plan: FaultPlan, env: bool = False):
        self.plan = plan
        self.env = env
        self.state: Optional[_ArmedPlan] = None

    def __enter__(self) -> "_ArmedPlan":
        install_plan(self.plan, env=self.env)
        self.state = _ARMED
        return self.state

    def __exit__(self, exc_type, exc, tb) -> bool:
        clear_plan(env=self.env)
        return False


def active_plan() -> Optional[FaultPlan]:
    """The armed plan, if any (checks the environment once)."""
    _check_env()
    return _ARMED.plan if _ARMED is not None else None


def _check_env() -> None:
    global _ENV_CHECKED
    if _ENV_CHECKED:
        return
    _ENV_CHECKED = True
    raw = os.environ.get(PLAN_ENV_VAR)
    if raw:
        try:
            install_plan(FaultPlan.from_json(json.loads(raw)))
        except (ValueError, KeyError, TypeError):
            # A malformed plan must never take the process down; chaos
            # stays disarmed.
            pass


def _count_injection(point: str) -> None:
    registry = metrics.registry()
    registry.counter("chaos.injected").inc()
    registry.counter("chaos.injected.point", point=point).inc()


def fire(point: str, **context: object) -> Optional[FaultRule]:
    """Maybe inject a fault at *point*; no-op when chaos is disarmed.

    Raises/sleeps/exits per the point's registered effect; ``mark``
    effects (and ``sleep``, after sleeping) return the fired rule so
    the site can apply or record a site-specific consequence.
    """
    _check_env()
    state = _ARMED
    if state is None:
        return None
    ctx = {key: str(value) for key, value in context.items()}
    rule = state.decide(point, ctx)
    if rule is None:
        return None
    _count_injection(point)
    effect = POINTS[point].effect
    if effect == "io_error":
        raise InjectedIOError(
            "chaos: injected I/O failure at {} ({})".format(point, ctx))
    if effect == "error":
        raise InjectedFault(
            "chaos: injected failure at {} ({})".format(point, ctx))
    if effect == "sleep":
        _deadline_polling_sleep(rule.arg if rule.arg is not None else 0.05)
        return rule
    if effect == "exit":
        os._exit(int(rule.arg) if rule.arg is not None else 137)
    return rule  # "mark": the site applies the fault


def _deadline_polling_sleep(seconds: float) -> None:
    """Sleep in small slices, polling the active guard deadline.

    A genuinely hung handler would be interrupted by whatever polls
    :func:`repro.qa.guards.check_active` deep in the work it performs;
    an injected stall must honour the same contract, so a daemon
    per-request deadline turns injected slowness into a typed
    ``deadline_exceeded`` answer instead of a wedged worker.
    """
    from repro.qa import guards

    end = time.monotonic() + seconds
    while True:
        guards.check_active()
        remaining = end - time.monotonic()
        if remaining <= 0:
            return
        time.sleep(min(0.005, remaining))


def register_metrics() -> None:
    """Touch every chaos/robustness series so exports carry them at
    zero even when nothing fired (``BENCH_obs.prom`` stability)."""
    registry = metrics.registry()
    registry.counter("chaos.injected")
    registry.counter("serve.deadline.installed")
    registry.counter("serve.deadline.expired")
    registry.counter("serve.request.rejected")
    registry.counter("serve.factcache.io_error")
    registry.counter("serve.client.retries")
    registry.counter("serve.client.breaker_open")
    registry.counter("corpus.shard.retries")
    registry.counter("corpus.shard.quarantined")
    registry.gauge("serve.degraded")


# ----------------------------------------------------------------------
# Built-in plans


@dataclass(frozen=True)
class ChaosPlanSpec:
    """A named, ready-to-run plan plus its battery configuration."""

    name: str
    description: str
    target: str  # "serve" | "corpus" | "stdio" | "ledger"
    rules: Tuple[FaultRule, ...]
    deadline_seconds: Optional[float] = None
    restart: bool = False  # serve: kill + restart the daemon mid-battery

    def plan(self, seed: int) -> FaultPlan:
        return FaultPlan(seed=seed, rules=self.rules, name=self.name)


_PLAN_SPECS: Tuple[ChaosPlanSpec, ...] = (
    ChaosPlanSpec(
        name="cache-flaky",
        description="fact-store reads and writes fail half the time; the "
        "daemon degrades to cold compute and every answer stays pinned",
        target="serve",
        rules=(
            FaultRule("factstore.load", probability=0.5),
            FaultRule("factstore.store", probability=0.5),
        ),
    ),
    ChaosPlanSpec(
        name="cache-corrupt",
        description="every disk restore finds a truncated partition; "
        "corruption reads as a miss, facts rebuild and self-heal",
        target="serve",
        rules=(FaultRule("factstore.corrupt"),),
    ),
    ChaosPlanSpec(
        name="compile-crash",
        description="cold compiles die with 30% probability; failures "
        "become typed internal errors and retries succeed",
        target="serve",
        rules=(FaultRule("session.compile", probability=0.3),),
    ),
    ChaosPlanSpec(
        name="slow-handler",
        description="handlers stall past the per-request deadline 40% of "
        "the time; stalled requests answer deadline_exceeded, the rest "
        "stay correct",
        target="serve",
        deadline_seconds=0.2,
        rules=(FaultRule("daemon.handler", probability=0.4, arg=1.0),),
    ),
    ChaosPlanSpec(
        name="client-drop",
        description="connections drop before 40% of requests and the "
        "daemon is killed and restarted mid-battery; the client retries "
        "with backoff and every query eventually succeeds",
        target="serve",
        restart=True,
        rules=(FaultRule("client.drop", probability=0.4),),
    ),
    ChaosPlanSpec(
        name="mixed",
        description="flaky fact store + occasional compile crashes + "
        "stalled handlers under a deadline, all at once",
        target="serve",
        deadline_seconds=0.2,
        rules=(
            FaultRule("factstore.load", probability=0.4),
            FaultRule("factstore.store", probability=0.4),
            FaultRule("session.compile", probability=0.15, times=3),
            FaultRule("daemon.handler", probability=0.2, arg=1.0),
        ),
    ),
    ChaosPlanSpec(
        name="worker-kill",
        description="shard 1's first worker is killed mid-shard; the "
        "watchdog retries it on a fresh worker and the run completes",
        target="corpus",
        rules=(
            FaultRule("corpus.worker_kill",
                      match=(("attempt", "0"), ("shard", "1"))),
        ),
    ),
    ChaosPlanSpec(
        name="poison-shard",
        description="shard 1 kills every worker that touches it; after "
        "bounded retries it is quarantined and reported while every "
        "other shard completes",
        target="corpus",
        rules=(FaultRule("corpus.worker_kill", match=(("shard", "1"),)),),
    ),
    ChaosPlanSpec(
        name="stdio-flaky",
        description="the plan crosses a process boundary: a subprocess "
        "stdio daemon picks it up from REPRO_CHAOS_PLAN and suffers a "
        "flaky fact store plus compile crashes; every answer that comes "
        "back over the pipe is pinned correct or a typed error",
        target="stdio",
        rules=(
            FaultRule("factstore.load", probability=0.4),
            FaultRule("factstore.store", probability=0.4),
            FaultRule("session.compile", probability=0.5, times=2),
        ),
    ),
    ChaosPlanSpec(
        name="ledger-torn",
        description="bench-ledger appends are torn mid-line half the "
        "time; read_history skips each torn line with a warning and "
        "bench compare still runs over the surviving records",
        target="ledger",
        rules=(FaultRule("history.append", probability=0.5),),
    ),
    ChaosPlanSpec(
        name="tracestore-torn",
        description="trace-store appends are torn mid-line half the "
        "time; readers skip each torn record with a counter and a "
        "daemon sampling at 100% keeps serving pinned-correct answers",
        target="tracestore",
        rules=(FaultRule("tracestore.append", probability=0.5),),
    ),
    ChaosPlanSpec(
        name="shard-hang",
        description="shard 0 hangs on its first attempt; the watchdog "
        "times it out, retries, and the run completes",
        target="corpus",
        rules=(
            FaultRule("corpus.shard_hang", arg=30.0,
                      match=(("attempt", "0"), ("shard", "0"))),
        ),
    ),
)

_SPECS_BY_NAME = {spec.name: spec for spec in _PLAN_SPECS}


def built_in_plans() -> List[ChaosPlanSpec]:
    return list(_PLAN_SPECS)


def plan_spec(name: str) -> ChaosPlanSpec:
    try:
        return _SPECS_BY_NAME[name]
    except KeyError:
        raise ValueError("unknown chaos plan {!r}; known: {}".format(
            name, sorted(_SPECS_BY_NAME)))


# ----------------------------------------------------------------------
# The chaos batteries


#: Error kinds a chaotic daemon may legitimately answer with.  Anything
#: else — and any ``differential`` mismatch in particular — is a
#: violation of the core invariant.
TYPED_ERROR_KINDS = frozenset({
    "compile", "internal", "resource_limit", "deadline_exceeded",
    "protocol", "unavailable",
})

#: Second module for the serve battery: distinct hierarchy and counts.
_BATTERY_SOURCE_B = """
MODULE ChaosB;

TYPE
  P = OBJECT next: P; v: INTEGER; END;
  Q = P OBJECT w: P; END;

VAR head: P;

PROCEDURE Push (n: P) =
BEGIN
  n.next := head;
  head := n;
END Push;

BEGIN
  Push (NEW (Q));
  Push (NEW (P));
END ChaosB.
"""

#: Edited variant of the smoke module (same unit name, one body edit) so
#: the battery exercises invalidation while chaos fires.
def _battery_sources() -> List[Tuple[str, str]]:
    from repro.serve.client import SMOKE_SOURCE

    edited = SMOKE_SOURCE.replace("buf^[0] := 1;", "buf^[1] := 2;")
    assert edited != SMOKE_SOURCE
    return [
        ("smoke", SMOKE_SOURCE),
        ("chaosb", _BATTERY_SOURCE_B),
        ("smoke", edited),
    ]


def _expected_counts(sources: List[Tuple[str, str]]) -> Dict[tuple, tuple]:
    """Cold-engine ground truth for every (source, analysis, world)."""
    from repro import compile_program
    from repro.analysis import ANALYSIS_NAMES
    from repro.analysis.alias_pairs import AliasPairCounter
    from repro.analysis.facts import source_hash

    expected: Dict[tuple, tuple] = {}
    for _name, source in sources:
        key = source_hash(source)
        program = compile_program(source, unit="<chaos>")
        base = program.base().program
        for analysis in ANALYSIS_NAMES:
            for open_world in (False, True):
                counter = AliasPairCounter(
                    base, program.analysis(analysis, open_world=open_world),
                    engine="fast")
                expected[(key, analysis, open_world)] = \
                    counter.count().counts()
    return expected


def _battery_requests(sources: List[Tuple[str, str]]) -> List[dict]:
    """The deterministic request stream the serve battery replays.

    Every request carries a ``trace_id`` derived from its id, so the
    battery can assert that trace propagation survives fault injection:
    the echoed ``trace`` must come back on every answer, pinned-correct
    responses and typed errors alike.
    """
    from repro.analysis import ANALYSIS_NAMES

    requests: List[dict] = [{"op": "ping", "id": "ping-0"}]
    rid = 0
    for round_index in range(2):
        for name, source in sources:
            for analysis in ANALYSIS_NAMES:
                rid += 1
                requests.append({
                    "op": "alias", "id": "alias-{}".format(rid),
                    "source": source, "name": name, "analysis": analysis,
                    "open_world": bool(rid % 2),
                })
            rid += 1
            requests.append({
                "op": "tables", "id": "tables-{}".format(rid),
                "source": source, "name": name, "worlds": "both",
            })
        requests.append({"op": "stats", "id": "stats-{}".format(round_index)})
    for request in requests:
        request["trace_id"] = "chaos-{}".format(request["id"])
    return requests


def _verify_response(request: dict, response: dict,
                     expected: Dict[tuple, tuple],
                     violations: List[dict],
                     typed_errors: Dict[str, int]) -> None:
    """Check one answer against the core invariant."""
    from repro.analysis.facts import source_hash

    if not isinstance(response, dict):
        violations.append({"id": request.get("id"),
                           "reason": "non-object response"})
        return
    wanted_trace = request.get("trace_id")
    if wanted_trace is not None and response.get("trace") != wanted_trace:
        violations.append({
            "id": request.get("id"),
            "reason": "trace id lost under fault injection",
            "sent": wanted_trace,
            "echoed": response.get("trace"),
        })
    if not response.get("ok"):
        kind = (response.get("error") or {}).get("kind")
        if kind in TYPED_ERROR_KINDS:
            typed_errors[kind] = typed_errors.get(kind, 0) + 1
        else:
            violations.append({
                "id": request.get("id"),
                "reason": "untyped or forbidden error kind {!r}".format(kind),
                "error": response.get("error"),
            })
        return
    result = response.get("result", {})
    if request["op"] == "alias":
        key = (source_hash(request["source"]), request["analysis"],
               request.get("open_world", False))
        served = (result.get("references"), result.get("local_pairs"),
                  result.get("global_pairs"))
        if served != expected[key]:
            violations.append({
                "id": request.get("id"),
                "reason": "wrong alias counts",
                "served": list(served),
                "expected": list(expected[key]),
            })
    elif request["op"] == "tables":
        key_base = source_hash(request["source"])
        for row in result.get("rows", ()):
            key = (key_base, row.get("analysis"),
                   row.get("open_world", False))
            served = (row.get("references"), row.get("local_pairs"),
                      row.get("global_pairs"))
            if served != expected[key]:
                violations.append({
                    "id": request.get("id"),
                    "reason": "wrong tables row",
                    "served": list(served),
                    "expected": list(expected[key]),
                })


def _run_serve_battery(spec: ChaosPlanSpec, seed: int,
                       cache_dir: str) -> dict:
    """Boot an in-process daemon under the plan; replay the battery."""
    from pathlib import Path

    from repro.serve.client import (
        CircuitBreaker,
        ResilientHttpClient,
        RetryPolicy,
        ServeClientError,
    )
    from repro.serve.daemon import Daemon
    from repro.serve.factcache import FactStore
    from repro.serve.session import SessionManager

    sources = _battery_sources()
    expected = _expected_counts(sources)
    requests = _battery_requests(sources)

    def build_daemon() -> Daemon:
        # max_sessions=2 forces session evictions, so disk restores (and
        # the fact-store injection points) actually run mid-battery.
        manager = SessionManager(
            store=FactStore(Path(cache_dir) / "store"),
            max_sessions=2, differential=True)
        return Daemon(manager, deadline_seconds=spec.deadline_seconds)

    violations: List[dict] = []
    typed_errors: Dict[str, int] = {}
    ok_responses = 0
    policy = RetryPolicy(max_attempts=8, base_delay=0.02, max_delay=0.5,
                         seed=seed)
    daemon = build_daemon()
    port = daemon.start_http()
    client = ResilientHttpClient(port, policy=policy,
                                 breaker=CircuitBreaker(failure_threshold=50))
    restart_at = len(requests) // 2 if spec.restart else None
    restarted = False
    try:
        with armed(plan_spec(spec.name).plan(seed)) as state:
            for i, request in enumerate(requests):
                if restart_at is not None and i == restart_at:
                    # Kill the daemon mid-battery; bring a fresh one up
                    # on the same port from another thread while the
                    # client is already retrying.
                    daemon.stop_http()
                    replacement: List[Daemon] = []

                    def revive():
                        time.sleep(0.15)
                        fresh = build_daemon()
                        fresh.start_http(port)
                        replacement.append(fresh)

                    reviver = threading.Thread(target=revive)
                    reviver.start()
                    try:
                        response = client.query(request)
                    except ServeClientError as err:
                        violations.append({
                            "id": request.get("id"),
                            "reason": "client did not heal across the "
                            "daemon restart: {}".format(err),
                        })
                        response = None
                    reviver.join()
                    if replacement:
                        daemon = replacement[0]
                    restarted = True
                    if response is None:
                        continue
                else:
                    try:
                        response = client.query(request)
                    except ServeClientError as err:
                        violations.append({
                            "id": request.get("id"),
                            "reason": "client gave up: {}".format(err),
                        })
                        continue
                _verify_response(request, response, expected,
                                 violations, typed_errors)
                if response.get("ok"):
                    ok_responses += 1
            injected = state.injected()
    finally:
        daemon.stop_http()
    registry = metrics.registry()
    return {
        "target": "serve",
        "requests": len(requests),
        "ok_responses": ok_responses,
        "typed_errors": dict(sorted(typed_errors.items())),
        "injected": injected,
        "violations": violations,
        "restarted": restarted,
        "client_retries": int(
            registry.counter("serve.client.retries").value),
        "deadline_expired": int(
            registry.counter("serve.deadline.expired").value),
        "degraded_seen": bool(
            registry.counter("serve.factcache.io_error").value),
    }


def _run_stdio_battery(spec: ChaosPlanSpec, seed: int,
                       cache_dir: str) -> dict:
    """Replay the battery against a *subprocess* stdio daemon.

    The plan never arms in this process: it crosses the process
    boundary as JSON in ``REPRO_CHAOS_PLAN``, exactly the way an
    operator (or CI) would inject faults into a real deployment.  The
    invariant is asserted on what comes back over the pipe, and the
    child's own ``chaos.injected`` counter — surfaced through the
    ``stats`` op — proves the faults actually fired on the far side.
    """
    from pathlib import Path

    from repro.serve.client import ServeClientError, StdioClient

    sources = _battery_sources()
    expected = _expected_counts(sources)
    requests = _battery_requests(sources)

    plan = spec.plan(seed)
    env = dict(os.environ)
    env[PLAN_ENV_VAR] = json.dumps(plan.to_json(), sort_keys=True)

    violations: List[dict] = []
    typed_errors: Dict[str, int] = {}
    ok_responses = 0
    child_injected = 0
    with StdioClient(cache_dir=str(Path(cache_dir) / "store"),
                     env=env) as client:
        for request in requests:
            try:
                response = client.query(request)
            except ServeClientError as err:
                violations.append({
                    "id": request.get("id"),
                    "reason": "stdio daemon died under chaos: {}".format(err),
                })
                break
            _verify_response(request, response, expected,
                             violations, typed_errors)
            if isinstance(response, dict) and response.get("ok"):
                ok_responses += 1
        try:
            stats = client.query({"op": "stats", "id": "stats-final",
                                  "trace_id": "chaos-stats-final"})
            child_injected = int(
                stats.get("result", {}).get("counters", {})
                .get("chaos.injected", 0))
        except ServeClientError as err:
            violations.append({
                "reason": "could not read child chaos counters: {}".format(
                    err)})
    if child_injected <= 0:
        violations.append({
            "reason": "plan did not cross the process boundary: the "
            "subprocess daemon reports zero injections"})
    return {
        "target": "stdio",
        "requests": len(requests),
        "ok_responses": ok_responses,
        "typed_errors": dict(sorted(typed_errors.items())),
        "injected": {"child": child_injected},
        "chaos_injected_total": child_injected,
        "violations": violations,
    }


def _run_ledger_battery(spec: ChaosPlanSpec, seed: int,
                        work_dir: str) -> dict:
    """Tear bench-ledger appends mid-line; readers must shrug it off.

    Appends a deterministic stream of valid records while the
    ``history.append`` point truncates about half of them, then asserts
    that :func:`repro.obs.history.read_history`, the validator CLI, and
    ``bench compare`` all succeed over the surviving records — a torn
    line is a crash artifact, and it must never wedge the gate.
    """
    import io
    from contextlib import redirect_stderr
    from pathlib import Path

    from repro.obs import history, regress

    path = str(Path(work_dir) / "BENCH_history.jsonl")
    n_records = 16
    host = history.host_fingerprint()
    violations: List[dict] = []
    with armed(plan_spec(spec.name).plan(seed)) as state:
        for i in range(n_records):
            history.append_record(path, {
                "schema": history.HISTORY_SCHEMA_VERSION,
                "kind": history.RECORD_KIND,
                "tool": "chaos-ledger-battery",
                "label": "run-{}".format(i),
                "git_sha": None,
                "timestamp_utc": history.utc_timestamp(),
                "host": host,
                "phases": {
                    "(suite)": {"bench.run": 1.0 + 0.01 * (i % 4)},
                },
                "counters": {"alias.queries": 100 + i},
            })
        injected = state.injected()
    torn = injected.get("history.append", 0)
    if not 0 < torn < n_records:
        violations.append({
            "reason": "battery needs both torn and surviving appends",
            "torn": torn, "appended": n_records,
        })
    try:
        records = history.read_history(path)
    except ValueError as err:
        violations.append({
            "reason": "read_history crashed on a torn ledger: {}".format(
                err)})
        records = []
    if records and len(records) != n_records - torn:
        violations.append({
            "reason": "surviving record count is wrong",
            "read": len(records), "expected": n_records - torn,
        })
    skipped = int(
        metrics.registry().counter("obs.history.torn_skipped").value)
    if records and skipped < torn:
        violations.append({
            "reason": "torn lines were not counted as skipped",
            "torn": torn, "skipped": skipped,
        })
    try:
        n_valid = history.validate_file(path)
    except (OSError, ValueError) as err:
        n_valid = -1
        violations.append({
            "reason": "history validator rejected a torn-but-valid "
            "ledger: {}".format(err)})
    compare_report = None
    if len(records) >= 2:
        half = len(records) // 2
        try:
            # bench compare's engine; stderr noise (warnings about wide
            # deltas) is irrelevant here, only "does it crash" matters.
            with redirect_stderr(io.StringIO()):
                compare_report = regress.compare_records(
                    records[:half], records[half:])
        except ValueError as err:
            violations.append({
                "reason": "bench compare crashed on surviving records: "
                "{}".format(err)})
    return {
        "target": "ledger",
        "appended": n_records,
        "torn": torn,
        "read": len(records),
        "validated": n_valid,
        "compared": compare_report is not None,
        "injected": injected,
        "violations": violations,
    }


def _run_tracestore_battery(spec: ChaosPlanSpec, seed: int,
                            work_dir: str) -> dict:
    """Tear trace-store appends mid-line; tracing must stay telemetry.

    Two invariants, tested in two phases.  First, the store itself:
    append a deterministic record stream while ``tracestore.append``
    truncates about half of them, then assert readers return exactly
    the surviving records, counting each torn line
    (``obs.trace.torn_skipped``) instead of crashing.  Second, the
    serving stack: a daemon sampling at 100% (every request flushes a
    record through the same torn seam) must keep answering
    pinned-correct — a dying trace write is never allowed to cost a
    request.
    """
    from pathlib import Path

    from repro.obs.reqlog import now as wall_now
    from repro.obs.sampler import HeadSampler
    from repro.obs.tracestore import TraceStore
    from repro.obs.traceview import merge_trace
    from repro.serve import protocol
    from repro.serve.daemon import Daemon
    from repro.serve.session import SessionManager

    violations: List[dict] = []
    registry = metrics.registry()

    # -- phase 1: the store under torn appends -------------------------
    store_a = TraceStore(Path(work_dir) / "traces-direct")
    n_records = 16
    with armed(plan_spec(spec.name).plan(seed)) as state:
        for i in range(n_records):
            store_a.append({
                "kind": "trace_record", "schema": 1,
                "trace": "chaos-trace-{}".format(i),
                "proc": "battery0", "origin": "battery",
                "op": "chaos.append", "unit": None,
                "ms": 1.0 + 0.25 * i, "ok": True, "ts": wall_now(),
                "parent": None,
                "spans": [{"name": "chaos.append", "id": 1,
                           "parent": None, "duration_ms": 1.0}],
                "notes": {}, "dropped": 0,
            })
        torn = state.injected().get("tracestore.append", 0)
    if not 0 < torn < n_records:
        violations.append({
            "reason": "battery needs both torn and surviving appends",
            "torn": torn, "appended": n_records,
        })
    survivors = store_a.records()
    if len(survivors) != n_records - torn:
        violations.append({
            "reason": "surviving trace-record count is wrong",
            "read": len(survivors), "expected": n_records - torn,
        })
    skipped = int(registry.counter("obs.trace.torn_skipped").value)
    if skipped < torn:
        violations.append({
            "reason": "torn trace lines were not counted as skipped",
            "torn": torn, "skipped": skipped,
        })

    # -- phase 2: serving at 100% sampling through the same seam -------
    sources = _battery_sources()
    expected = _expected_counts(sources)
    requests = _battery_requests(sources)
    store_b = TraceStore(Path(work_dir) / "traces-daemon")
    daemon = Daemon(SessionManager(store=None), sampler=HeadSampler(1.0),
                    trace_store=store_b)
    typed_errors: Dict[str, int] = {}
    ok_responses = 0
    with armed(plan_spec(spec.name).plan(seed + 1)) as state:
        for request in requests:
            response = daemon.handle_request(
                protocol.Request.from_obj(dict(request)))
            _verify_response(request, response, expected,
                             violations, typed_errors)
            if response.get("ok"):
                ok_responses += 1
        daemon_torn = state.injected().get("tracestore.append", 0)
    if typed_errors:
        violations.append({
            "reason": "torn trace appends degraded serving",
            "typed_errors": typed_errors,
        })
    if daemon_torn <= 0:
        violations.append({
            "reason": "no daemon trace append was torn; the battery "
            "proved nothing"})
    daemon_records = store_b.records()
    if not daemon_records:
        violations.append({
            "reason": "no daemon trace record survived the tearing"})
    for trace_id, records in store_b.traces().items():
        if any(root.detached for root in merge_trace(records)):
            violations.append({
                "reason": "surviving trace does not merge cleanly",
                "trace": trace_id,
            })
    return {
        "target": "tracestore",
        "appended": n_records,
        "torn": torn,
        "read": len(survivors),
        "requests": len(requests),
        "ok_responses": ok_responses,
        "daemon_torn": daemon_torn,
        "daemon_records": len(daemon_records),
        "torn_skipped": int(
            registry.counter("obs.trace.torn_skipped").value),
        "injected": {"tracestore.append": torn + daemon_torn},
        "violations": violations,
    }


def _run_corpus_battery(spec: ChaosPlanSpec, seed: int,
                        work_dir: str) -> dict:
    """Generate a small corpus; run the sharded driver under the plan."""
    from pathlib import Path

    from repro.qa.corpus import CorpusSpec, generate_corpus, run_corpus

    corpus_dir = Path(work_dir) / "corpus"
    corpus_spec = CorpusSpec(seed=seed, count=12, shard_size=4,
                             max_stmts=10)
    generate_corpus(corpus_spec, corpus_dir)
    violations: List[dict] = []
    with armed(plan_spec(spec.name).plan(seed)):
        report = run_corpus(
            corpus_dir, jobs=2, engine="bulk",
            shard_timeout_seconds=2.5, max_shard_retries=1)
    quarantined = {q["index"] for q in report.quarantined}
    completed = {o.index for o in report.shards}
    expected_shards = set(range(corpus_spec.n_shards()))
    # Every shard is either completed or quarantined-and-reported;
    # nothing is dropped silently.
    missing = expected_shards - completed - quarantined
    if missing:
        violations.append({
            "reason": "shards dropped silently",
            "missing": sorted(missing),
        })
    if report.failures:
        violations.append({"reason": "per-program failures",
                           "failures": report.failures})
    if spec.name == "poison-shard" and quarantined != {1}:
        violations.append({
            "reason": "poison shard not quarantined as expected",
            "quarantined": sorted(quarantined),
        })
    if spec.name in ("worker-kill", "shard-hang") and quarantined:
        violations.append({
            "reason": "transient fault must recover via retry, not "
            "quarantine",
            "quarantined": sorted(quarantined),
        })
    registry = metrics.registry()
    return {
        "target": "corpus",
        "shards": len(report.shards),
        "programs": report.programs,
        "quarantined": report.quarantined,
        "shard_retries": int(
            registry.counter("corpus.shard.retries").value),
        "violations": violations,
    }


def run_chaos(plan_name: str, seed: int = 0,
              work_dir: Optional[str] = None) -> dict:
    """Run one built-in plan's battery; returns a JSON-able report.

    The report's ``ok`` field is the core invariant: no violation was
    observed — every answer correct or a typed error, every shard
    completed or quarantined-and-reported, no crash.
    """
    import tempfile

    spec = plan_spec(plan_name)
    metrics.registry().reset()
    register_metrics()
    if work_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            return run_chaos(plan_name, seed=seed, work_dir=tmp)
    if spec.target == "corpus":
        body = _run_corpus_battery(spec, seed, work_dir)
    elif spec.target == "stdio":
        body = _run_stdio_battery(spec, seed, work_dir)
    elif spec.target == "ledger":
        body = _run_ledger_battery(spec, seed, work_dir)
    elif spec.target == "tracestore":
        body = _run_tracestore_battery(spec, seed, work_dir)
    else:
        body = _run_serve_battery(spec, seed, work_dir)
    report = {
        "plan": spec.name,
        "seed": seed,
        "description": spec.description,
        "ok": not body["violations"],
        "chaos_injected_total": int(
            metrics.registry().counter("chaos.injected").value),
    }
    report.update(body)
    return report
