"""Sharded corpus pipeline: ``repro corpus gen / verify / run / bench``.

``repro fuzz`` exercises the oracles one seeded program at a time; the
corpus pipeline scales the same deterministic generator to 10³–10⁵
MiniM3 programs materialised on disk and drives batch work over them:

* :func:`generate_corpus` renders programs for seeds ``seed ..
  seed+count-1`` (size/shape dials come from :class:`CorpusSpec`, a
  superset of :class:`~repro.qa.generator.GenConfig`) and writes them in
  **content-hashed shards**: each shard file name embeds the SHA-256 of
  its program payload and ``manifest.json`` pins every shard's hash, so
  corruption or hand-editing is detected before any batch consumes it
  (:func:`verify_corpus`).
* :func:`run_corpus` is the sharded driver: shards fan out over a
  ``multiprocessing`` pool (``jobs=1`` stays in-process and exactly
  deterministic), each shard runs inside its own **fault bulkhead** —
  one broken shard or program is reported without sinking the batch —
  and per-shard results merge deterministically by shard index.  Worker
  registries are snapshotted and folded back into the parent's
  :mod:`repro.obs.metrics` registry, so ``aliaspairs.*`` / cache
  counters aggregate across processes, and every shard contributes to
  the ``corpus.shard.programs`` / ``corpus.shard.pairs`` /
  ``corpus.shard.seconds`` counter family.
* :func:`bench_corpus` times the Table 5 count over the corpus once per
  engine — the fast engine re-partitions on every count, while the bulk
  engine builds its bitset matrix once and then re-counts with pure
  kernels — reporting per-phase seconds (``corpus.table5.fast``,
  ``corpus.bulk.build``, ``corpus.table5.bulk``) that the CLI folds into
  ``BENCH_history.jsonl`` so ``repro bench gate`` guards the hot path.

Every program entry in a shard carries its generating seed *and* its
rendered source hash; because generation is deterministic, workers can
cross-check the stored source against a regeneration of the seed, which
the ``--oracles`` mode uses before trusting a program.
"""

import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import core as obs
from repro.obs import metrics
from repro.qa.generator import GenConfig, generate_program
from repro.qa.guards import guarded

__all__ = [
    "CorpusSpec",
    "CorpusManifest",
    "ShardInfo",
    "ShardOutcome",
    "CorpusRunReport",
    "generate_corpus",
    "load_manifest",
    "load_shard",
    "verify_corpus",
    "run_corpus",
    "bench_corpus",
]

#: Bumped whenever the manifest/shard layout changes.
CORPUS_SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: Default per-program wall-clock bulkhead, seconds.
PER_PROGRAM_SECONDS = 10.0


# ----------------------------------------------------------------------
# Spec and manifest


@dataclass(frozen=True)
class CorpusSpec:
    """Seeded recipe for one corpus: how many programs, what shapes.

    The shape dials mirror :class:`~repro.qa.generator.GenConfig`; the
    pipeline dials (``seed``, ``count``, ``shard_size``) are its own.
    A spec fully determines the corpus bytes — same spec, same shards,
    same hashes.
    """

    seed: int = 0
    count: int = 1000
    shard_size: int = 100
    max_object_types: int = 4
    max_ref_vars: int = 4
    max_int_vars: int = 3
    max_procs: int = 3
    max_stmts: int = 22
    max_depth: int = 2
    allow_methods: bool = True
    allow_nil: bool = True

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("corpus count must be >= 1")
        if self.shard_size < 1:
            raise ValueError("corpus shard_size must be >= 1")

    def gen_config(self) -> GenConfig:
        return GenConfig(
            max_object_types=self.max_object_types,
            max_ref_vars=self.max_ref_vars,
            max_int_vars=self.max_int_vars,
            max_procs=self.max_procs,
            max_stmts=self.max_stmts,
            max_depth=self.max_depth,
            allow_methods=self.allow_methods,
            allow_nil=self.allow_nil,
        )

    def n_shards(self) -> int:
        return (self.count + self.shard_size - 1) // self.shard_size

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, obj: dict) -> "CorpusSpec":
        known = {f: obj[f] for f in cls.__dataclass_fields__ if f in obj}
        return cls(**known)


@dataclass(frozen=True)
class ShardInfo:
    """One shard as the manifest records it."""

    index: int
    file: str
    programs: int
    sha256: str

    def to_json(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class CorpusManifest:
    """The validated content of ``manifest.json``."""

    spec: CorpusSpec
    shards: Tuple[ShardInfo, ...]

    @property
    def n_programs(self) -> int:
        return sum(s.programs for s in self.shards)

    def to_json(self) -> dict:
        return {
            "schema": CORPUS_SCHEMA_VERSION,
            "kind": "corpus_manifest",
            "spec": self.spec.to_json(),
            "programs": self.n_programs,
            "n_shards": len(self.shards),
            "shards": [s.to_json() for s in self.shards],
        }


def _payload_hash(programs: List[dict]) -> str:
    blob = json.dumps(programs, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# Generation


def generate_corpus(
    spec: CorpusSpec,
    out_dir: Path,
    progress: Optional[Callable[[int, int], None]] = None,
) -> CorpusManifest:
    """Render the corpus *spec* describes into ``out_dir``.

    Writes one ``shard-NNNN-<hash12>.json`` per :attr:`CorpusSpec.
    shard_size` programs plus ``manifest.json``; returns the manifest.
    ``progress`` (if given) is called with ``(shards_done, n_shards)``.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    config = spec.gen_config()
    shards: List[ShardInfo] = []
    n_shards = spec.n_shards()
    with obs.span("corpus.gen", count=spec.count, shards=n_shards):
        for shard_index in range(n_shards):
            lo = shard_index * spec.shard_size
            hi = min(lo + spec.shard_size, spec.count)
            programs: List[dict] = []
            for i in range(lo, hi):
                seed = spec.seed + i
                generated = generate_program(seed, config)
                source = generated.render()
                programs.append({
                    "seed": seed,
                    "name": generated.name,
                    "sha256": hashlib.sha256(source.encode()).hexdigest(),
                    "source": source,
                })
            digest = _payload_hash(programs)
            file_name = "shard-{:04d}-{}.json".format(shard_index, digest[:12])
            shard_obj = {
                "schema": CORPUS_SCHEMA_VERSION,
                "kind": "corpus_shard",
                "index": shard_index,
                "sha256": digest,
                "programs": programs,
            }
            (out_dir / file_name).write_text(
                json.dumps(shard_obj, sort_keys=True) + "\n")
            shards.append(ShardInfo(
                index=shard_index, file=file_name,
                programs=len(programs), sha256=digest,
            ))
            if progress is not None:
                progress(shard_index + 1, n_shards)
    manifest = CorpusManifest(spec=spec, shards=tuple(shards))
    (out_dir / MANIFEST_NAME).write_text(
        json.dumps(manifest.to_json(), indent=2, sort_keys=True) + "\n")
    metrics.registry().new_counter("corpus.gen.programs").inc(spec.count)
    return manifest


# ----------------------------------------------------------------------
# Loading and verification


def load_manifest(corpus_dir: Path) -> CorpusManifest:
    """Parse and structurally validate ``manifest.json``."""
    path = Path(corpus_dir) / MANIFEST_NAME
    try:
        obj = json.loads(path.read_text())
    except json.JSONDecodeError as err:
        raise ValueError("{}: not JSON: {}".format(path, err))
    if not isinstance(obj, dict) or obj.get("kind") != "corpus_manifest":
        raise ValueError("{}: not a corpus manifest".format(path))
    if obj.get("schema") != CORPUS_SCHEMA_VERSION:
        raise ValueError("{}: unknown schema version {!r}".format(
            path, obj.get("schema")))
    spec = CorpusSpec.from_json(obj["spec"])
    shards = tuple(
        ShardInfo(index=s["index"], file=s["file"],
                  programs=s["programs"], sha256=s["sha256"])
        for s in obj["shards"]
    )
    if [s.index for s in shards] != list(range(len(shards))):
        raise ValueError("{}: shard indices are not dense".format(path))
    return CorpusManifest(spec=spec, shards=shards)


def load_shard(corpus_dir: Path, info: ShardInfo,
               verify: bool = True) -> List[dict]:
    """The program entries of one shard, hash-checked against the
    manifest unless ``verify=False``."""
    path = Path(corpus_dir) / info.file
    obj = json.loads(path.read_text())
    programs = obj.get("programs")
    if not isinstance(programs, list):
        raise ValueError("{}: malformed shard (no programs)".format(path))
    if verify:
        digest = _payload_hash(programs)
        if digest != info.sha256 or digest != obj.get("sha256"):
            raise ValueError(
                "{}: content hash mismatch (manifest {}, got {})".format(
                    path, info.sha256[:12], digest[:12]))
    return programs


def verify_corpus(corpus_dir: Path) -> CorpusManifest:
    """Hash-check every shard against the manifest; returns it when ok."""
    manifest = load_manifest(corpus_dir)
    for info in manifest.shards:
        load_shard(corpus_dir, info, verify=True)
    return manifest


# ----------------------------------------------------------------------
# Sharded run driver


@dataclass
class _RunOptions:
    """Everything a shard worker needs (must stay picklable)."""

    corpus_dir: str
    analyses: Tuple[str, ...]
    engine: str
    oracles: bool
    per_program_seconds: Optional[float]
    max_steps: int
    in_process: bool  # jobs=1: keep parent registry/recorder untouched
    spec: Optional[dict] = None  # generator dials, for the oracle mode


@dataclass
class ShardOutcome:
    """Result of one shard's bulkhead (always produced, even on crash)."""

    index: int
    file: str
    programs: int = 0
    compiled: int = 0
    oracle_checked: int = 0
    references: int = 0
    local_pairs: int = 0
    global_pairs: int = 0
    seconds: float = 0.0
    failures: List[dict] = field(default_factory=list)
    counters: Optional[List[dict]] = None  # worker registry snapshot

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "file": self.file,
            "programs": self.programs,
            "compiled": self.compiled,
            "oracle_checked": self.oracle_checked,
            "references": self.references,
            "local_pairs": self.local_pairs,
            "global_pairs": self.global_pairs,
            "seconds": round(self.seconds, 3),
            "failures": self.failures,
        }


@dataclass
class CorpusRunReport:
    """Deterministic merge of every shard outcome, by shard index."""

    corpus_dir: str
    engine: str
    jobs: int
    analyses: Tuple[str, ...]
    shards: List[ShardOutcome] = field(default_factory=list)
    duration: float = 0.0

    @property
    def programs(self) -> int:
        return sum(s.programs for s in self.shards)

    @property
    def compiled(self) -> int:
        return sum(s.compiled for s in self.shards)

    @property
    def references(self) -> int:
        return sum(s.references for s in self.shards)

    @property
    def local_pairs(self) -> int:
        return sum(s.local_pairs for s in self.shards)

    @property
    def global_pairs(self) -> int:
        return sum(s.global_pairs for s in self.shards)

    @property
    def failures(self) -> List[dict]:
        out: List[dict] = []
        for shard in self.shards:
            out.extend(shard.failures)
        return out

    @property
    def ok(self) -> bool:
        return not self.failures

    def throughput(self) -> float:
        """Programs per second of wall clock (the ledger's headline)."""
        if self.duration <= 0:
            return 0.0
        return self.programs / self.duration

    def to_json(self) -> dict:
        return {
            "corpus_dir": self.corpus_dir,
            "engine": self.engine,
            "jobs": self.jobs,
            "analyses": list(self.analyses),
            "programs": self.programs,
            "compiled": self.compiled,
            "references": self.references,
            "local_pairs": self.local_pairs,
            "global_pairs": self.global_pairs,
            "ok": self.ok,
            "failures": self.failures,
            "duration_seconds": round(self.duration, 3),
            "programs_per_second": round(self.throughput(), 2),
            "shards": [s.to_json() for s in self.shards],
        }


def _count_program(entry: dict, options: _RunOptions,
                   outcome: ShardOutcome) -> None:
    """Table 5 (and optionally the oracle battery) for one program."""
    from repro import compile_program
    from repro.analysis.alias_pairs import AliasPairCounter

    program = compile_program(entry["source"], entry["name"])
    outcome.compiled += 1
    ir = program.pipeline.base().program
    for analysis_name in options.analyses:
        analysis = program.analysis(analysis_name)
        report = AliasPairCounter(ir, analysis, engine=options.engine).count()
        outcome.references += report.references
        outcome.local_pairs += report.local_pairs
        outcome.global_pairs += report.global_pairs
    if options.oracles:
        from repro.qa.oracles import check_program

        # Determinism doubles as integrity: the recorded seed must
        # regenerate the stored bytes before the oracles vouch for it.
        if options.spec is not None:
            config = CorpusSpec.from_json(options.spec).gen_config()
            regenerated = generate_program(entry["seed"], config).render()
            digest = hashlib.sha256(regenerated.encode()).hexdigest()
            if digest != entry["sha256"]:
                raise ValueError(
                    "seed {} does not regenerate the stored program {}"
                    .format(entry["seed"], entry["name"]))
        oracle = check_program(entry["source"], name=entry["name"],
                               seed=entry["seed"], max_steps=options.max_steps)
        outcome.oracle_checked += 1
        if not oracle.ok:
            first = oracle.violations[0]
            outcome.failures.append({
                "seed": entry["seed"],
                "name": entry["name"],
                "phase": first.phase,
                "error": first.kind,
                "message": first.message,
            })


def _process_shard(task: Tuple[dict, _RunOptions]) -> ShardOutcome:
    """Worker entry point: one shard inside its bulkhead.

    Runs in a pool process for ``jobs>1`` (where the inherited registry
    is reset so the returned snapshot is exactly this shard's counters)
    or inline for ``jobs=1`` (where counters land in the parent registry
    directly and no snapshot is shipped).
    """
    info_obj, options = task
    outcome = ShardOutcome(index=info_obj["index"], file=info_obj["file"])
    started = time.perf_counter()
    if not options.in_process:
        metrics.registry().reset()
    try:
        info = ShardInfo(**info_obj)
        programs = load_shard(Path(options.corpus_dir), info, verify=True)
        for entry in programs:
            outcome.programs += 1
            try:
                with guarded(options.per_program_seconds,
                             "corpus program {}".format(entry["name"])):
                    _count_program(entry, options, outcome)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # per-program bulkhead
                outcome.failures.append({
                    "seed": entry.get("seed"),
                    "name": entry.get("name"),
                    "phase": "program",
                    "error": type(exc).__name__,
                    "message": str(exc),
                })
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:  # per-shard bulkhead
        outcome.failures.append({
            "seed": None,
            "name": info_obj["file"],
            "phase": "shard",
            "error": type(exc).__name__,
            "message": str(exc),
        })
    outcome.seconds = time.perf_counter() - started
    if not options.in_process:
        outcome.counters = metrics.registry().snapshot()
    return outcome


def _merge_worker_counters(snapshot: List[dict]) -> None:
    """Fold one worker registry snapshot into the parent registry.

    Counters accumulate into the shared child for the same series;
    gauges adopt the worker's last value; histograms are summarised by
    their event count under a ``.events`` counter (bucket-level merge is
    not worth carrying across the pipe).
    """
    registry = metrics.registry()
    for entry in snapshot:
        labels = entry["labels"]
        if entry["kind"] == "counter":
            if entry["value"]:
                registry.counter(entry["name"], **labels).inc(entry["value"])
        elif entry["kind"] == "gauge":
            registry.gauge(entry["name"], **labels).set(entry["value"])
        elif entry["kind"] == "histogram" and entry.get("count"):
            registry.counter(entry["name"] + ".events", **labels).inc(
                entry["count"])


def default_jobs() -> int:
    return os.cpu_count() or 1


def run_corpus(
    corpus_dir: Path,
    jobs: Optional[int] = None,
    analyses: Optional[Sequence[str]] = None,
    engine: str = "bulk",
    oracles: bool = False,
    per_program_seconds: Optional[float] = PER_PROGRAM_SECONDS,
    max_steps: int = 400_000,
    max_shards: Optional[int] = None,
    progress: Optional[Callable[[ShardOutcome], None]] = None,
) -> CorpusRunReport:
    """Drive Table 5 counting (and optionally the oracle battery) over
    every shard of a corpus, ``jobs`` shards at a time."""
    from repro.analysis.openworld import ANALYSIS_NAMES

    corpus_dir = Path(corpus_dir)
    manifest = load_manifest(corpus_dir)
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    analyses = tuple(analyses) if analyses else tuple(ANALYSIS_NAMES)
    shard_infos = list(manifest.shards)
    if max_shards is not None:
        shard_infos = shard_infos[:max_shards]
    options = _RunOptions(
        corpus_dir=str(corpus_dir),
        analyses=analyses,
        engine=engine,
        oracles=oracles,
        per_program_seconds=per_program_seconds,
        max_steps=max_steps,
        in_process=(jobs == 1),
        spec=manifest.spec.to_json(),
    )
    tasks = [(info.to_json(), options) for info in shard_infos]
    report = CorpusRunReport(
        corpus_dir=str(corpus_dir), engine=engine, jobs=jobs,
        analyses=analyses)
    started = time.monotonic()
    with obs.span("corpus.run", shards=len(tasks), jobs=jobs, engine=engine):
        if jobs == 1:
            outcomes = [_process_shard(task) for task in tasks]
        else:
            # fork keeps the workers cheap; the registry reset inside
            # _process_shard makes the inherited state irrelevant.
            with multiprocessing.Pool(processes=jobs) as pool:
                outcomes = list(pool.imap_unordered(_process_shard, tasks))
        outcomes.sort(key=lambda o: o.index)  # deterministic merge order
        registry = metrics.registry()
        for outcome in outcomes:
            if outcome.counters is not None:
                _merge_worker_counters(outcome.counters)
                outcome.counters = None
            registry.new_counter("corpus.shard.programs").inc(outcome.programs)
            registry.new_counter("corpus.shard.pairs").inc(
                outcome.local_pairs + outcome.global_pairs)
            registry.new_counter("corpus.shard.seconds").inc(outcome.seconds)
            with obs.span("corpus.shard", index=outcome.index,
                          programs=outcome.programs):
                pass  # marker span: shard boundaries in the trace timeline
            report.shards.append(outcome)
            if progress is not None:
                progress(outcome)
    report.duration = time.monotonic() - started
    registry.new_counter("corpus.run.shards").inc(len(report.shards))
    return report


# ----------------------------------------------------------------------
# Engine benchmark over a corpus


def bench_corpus(
    corpus_dir: Path,
    analyses: Optional[Sequence[str]] = None,
    repeats: int = 1,
    max_shards: Optional[int] = None,
) -> Dict[str, float]:
    """Per-phase seconds of the Table 5 count over a corpus, per engine.

    Compiles every program once, then times three phases ``repeats``
    times over the same inputs:

    * ``corpus.table5.fast``  — the PR 1 fast engine, which re-runs its
      partition + representative queries on every count;
    * ``corpus.bulk.build``   — building each program's bitset matrices
      (paid once; matrices are reusable and picklable);
    * ``corpus.table5.bulk``  — re-counting from the prebuilt matrices
      with pure kernels (the bulk hot path).

    Counts are asserted equal between engines on every program, so the
    benchmark doubles as a corpus-wide differential test.
    """
    from repro import compile_program
    from repro.analysis.alias_pairs import AliasPairCounter
    from repro.analysis.bulk import BulkAliasMatrix
    from repro.analysis.openworld import ANALYSIS_NAMES

    corpus_dir = Path(corpus_dir)
    manifest = load_manifest(corpus_dir)
    analyses = tuple(analyses) if analyses else tuple(ANALYSIS_NAMES)
    if repeats < 1:
        raise ValueError("repeats must be >= 1")

    shard_infos = list(manifest.shards)
    if max_shards is not None:
        shard_infos = shard_infos[:max_shards]
    # One-time setup outside every timed phase: compile, build analyses,
    # pre-collect the canonical reference maps.
    counters: List[AliasPairCounter] = []
    with obs.span("corpus.bench.setup"):
        for info in shard_infos:
            for entry in load_shard(corpus_dir, info, verify=True):
                program = compile_program(entry["source"], entry["name"])
                ir = program.pipeline.base().program
                for analysis_name in analyses:
                    counters.append(AliasPairCounter(
                        ir, program.analysis(analysis_name), engine="fast"))

    phases = {"corpus.table5.fast": 0.0, "corpus.bulk.build": 0.0,
              "corpus.table5.bulk": 0.0}
    fast_counts: List[Tuple[int, int, int]] = []
    for _ in range(repeats):
        with obs.span("corpus.table5.fast", programs=len(counters)):
            started = time.perf_counter()
            fast_counts = [c._count_fast().counts() for c in counters]
            phases["corpus.table5.fast"] += time.perf_counter() - started

    with obs.span("corpus.bulk.build", programs=len(counters)):
        started = time.perf_counter()
        matrices = [
            BulkAliasMatrix.from_references(c.references, c.analysis)
            for c in counters
        ]
        phases["corpus.bulk.build"] += time.perf_counter() - started

    bulk_counts: List[Tuple[int, int, int]] = []
    for _ in range(repeats):
        with obs.span("corpus.table5.bulk", programs=len(matrices)):
            started = time.perf_counter()
            bulk_counts = [m.count_pairs().counts() for m in matrices]
            phases["corpus.table5.bulk"] += time.perf_counter() - started

    for i, (fast, bulk) in enumerate(zip(fast_counts, bulk_counts)):
        if fast != bulk:
            raise AssertionError(
                "corpus bench: engines disagree on program {} ({}): "
                "fast={} bulk={}".format(
                    i, counters[i].analysis.name, fast, bulk))
    phases["corpus.bench.programs"] = float(len(counters))
    return phases
