"""Sharded corpus pipeline: ``repro corpus gen / verify / run / bench``.

``repro fuzz`` exercises the oracles one seeded program at a time; the
corpus pipeline scales the same deterministic generator to 10³–10⁵
MiniM3 programs materialised on disk and drives batch work over them:

* :func:`generate_corpus` renders programs for seeds ``seed ..
  seed+count-1`` (size/shape dials come from :class:`CorpusSpec`, a
  superset of :class:`~repro.qa.generator.GenConfig`) and writes them in
  **content-hashed shards**: each shard file name embeds the SHA-256 of
  its program payload and the ``shards.jsonl`` sidecar (one info line
  per shard, streamed as shards complete) pins every shard's hash, so
  corruption or hand-editing is detected before any batch consumes it
  (:func:`verify_corpus`).  ``manifest.json`` holds only the spec and
  totals; consumers stream :func:`iter_shards` so the shard list never
  has to fit in memory (>100k-program corpora stay flat).
* :func:`run_corpus` is the sharded driver: shard infos stream off disk
  and fan out lazily over a ``multiprocessing`` pool (``jobs=1`` stays
  in-process and exactly deterministic), each shard runs inside its own
  **fault bulkhead** —
  one broken shard or program is reported without sinking the batch —
  and per-shard results merge deterministically by shard index.  Worker
  registries are snapshotted and folded back into the parent's
  :mod:`repro.obs.metrics` registry, so ``aliaspairs.*`` / cache
  counters aggregate across processes, and every shard contributes to
  the ``corpus.shard.programs`` / ``corpus.shard.pairs`` /
  ``corpus.shard.seconds`` counter family.
* :func:`bench_corpus` times the Table 5 count over the corpus once per
  engine — the fast engine re-partitions on every count, while the bulk
  engine builds its bitset matrix once and then re-counts with pure
  kernels — reporting per-phase seconds (``corpus.table5.fast``,
  ``corpus.bulk.build``, ``corpus.table5.bulk``,
  ``corpus.table5.bulk_shared`` for the mmap-arena count, optionally
  fanned over forked workers that share one mapping) that the CLI folds
  into ``BENCH_history.jsonl`` so ``repro bench gate`` guards the hot
  path.

Every program entry in a shard carries its generating seed *and* its
rendered source hash; because generation is deterministic, workers can
cross-check the stored source against a regeneration of the seed, which
the ``--oracles`` mode uses before trusting a program.
"""

import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import core as obs
from repro.obs import metrics
from repro.qa import chaos
from repro.qa.generator import GenConfig, generate_program
from repro.qa.guards import guarded

__all__ = [
    "CorpusSpec",
    "CorpusManifest",
    "CorpusHeader",
    "ShardInfo",
    "ShardOutcome",
    "CorpusRunReport",
    "generate_corpus",
    "load_manifest",
    "load_manifest_header",
    "iter_shards",
    "load_shard",
    "verify_corpus",
    "run_corpus",
    "bench_corpus",
]

#: Bumped whenever the manifest/shard layout changes.
#: v2: the shard list moved out of ``manifest.json`` into a
#: ``shards.jsonl`` sidecar (one ShardInfo per line) so consumers can
#: stream shard metadata instead of materialising the whole list —
#: ``manifest.json`` keeps only the spec and the totals.  v1 corpora
#: (inline shard list) still load.
CORPUS_SCHEMA_VERSION = 2

MANIFEST_NAME = "manifest.json"

#: v2 sidecar holding one shard-info JSON object per line.
SHARDS_NAME = "shards.jsonl"

#: Default per-program wall-clock bulkhead, seconds.
PER_PROGRAM_SECONDS = 10.0


# ----------------------------------------------------------------------
# Spec and manifest


@dataclass(frozen=True)
class CorpusSpec:
    """Seeded recipe for one corpus: how many programs, what shapes.

    The shape dials mirror :class:`~repro.qa.generator.GenConfig`; the
    pipeline dials (``seed``, ``count``, ``shard_size``) are its own.
    A spec fully determines the corpus bytes — same spec, same shards,
    same hashes.
    """

    seed: int = 0
    count: int = 1000
    shard_size: int = 100
    max_object_types: int = 4
    max_ref_vars: int = 4
    max_int_vars: int = 3
    max_procs: int = 3
    max_stmts: int = 22
    max_depth: int = 2
    allow_methods: bool = True
    allow_nil: bool = True

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("corpus count must be >= 1")
        if self.shard_size < 1:
            raise ValueError("corpus shard_size must be >= 1")

    def gen_config(self) -> GenConfig:
        return GenConfig(
            max_object_types=self.max_object_types,
            max_ref_vars=self.max_ref_vars,
            max_int_vars=self.max_int_vars,
            max_procs=self.max_procs,
            max_stmts=self.max_stmts,
            max_depth=self.max_depth,
            allow_methods=self.allow_methods,
            allow_nil=self.allow_nil,
        )

    def n_shards(self) -> int:
        return (self.count + self.shard_size - 1) // self.shard_size

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, obj: dict) -> "CorpusSpec":
        known = {f: obj[f] for f in cls.__dataclass_fields__ if f in obj}
        return cls(**known)


@dataclass(frozen=True)
class ShardInfo:
    """One shard as the manifest records it."""

    index: int
    file: str
    programs: int
    sha256: str

    def to_json(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class CorpusManifest:
    """A fully materialised manifest (spec plus every shard info).

    Batch drivers that must scale to >100k-program corpora should not
    build one of these — they stream :func:`iter_shards` against a
    :class:`CorpusHeader` instead.  This object remains the convenient
    form for generation results, verification and tests.
    """

    spec: CorpusSpec
    shards: Tuple[ShardInfo, ...]

    @property
    def n_programs(self) -> int:
        return sum(s.programs for s in self.shards)

    def to_json(self) -> dict:
        """The v2 ``manifest.json`` payload (shard list lives in the
        ``shards.jsonl`` sidecar, not here)."""
        return {
            "schema": CORPUS_SCHEMA_VERSION,
            "kind": "corpus_manifest",
            "spec": self.spec.to_json(),
            "programs": self.n_programs,
            "n_shards": len(self.shards),
            "shards_file": SHARDS_NAME,
        }


@dataclass(frozen=True)
class CorpusHeader:
    """The constant-size part of a corpus: what streaming consumers load.

    ``shards_file`` is ``None`` for a v1 corpus, whose shard list is
    inline in ``manifest.json`` (:func:`iter_shards` handles both).
    """

    schema: int
    spec: CorpusSpec
    programs: int
    n_shards: int
    shards_file: Optional[str]
    inline_shards: Optional[Tuple[ShardInfo, ...]] = None


def _payload_hash(programs: List[dict]) -> str:
    blob = json.dumps(programs, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# Generation


def generate_corpus(
    spec: CorpusSpec,
    out_dir: Path,
    progress: Optional[Callable[[int, int], None]] = None,
) -> CorpusManifest:
    """Render the corpus *spec* describes into ``out_dir``.

    Writes one ``shard-NNNN-<hash12>.json`` per :attr:`CorpusSpec.
    shard_size` programs plus ``manifest.json``; returns the manifest.
    ``progress`` (if given) is called with ``(shards_done, n_shards)``.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    config = spec.gen_config()
    shards: List[ShardInfo] = []
    n_shards = spec.n_shards()
    with obs.span("corpus.gen", count=spec.count, shards=n_shards), \
            open(out_dir / SHARDS_NAME, "w") as shards_file:
        for shard_index in range(n_shards):
            lo = shard_index * spec.shard_size
            hi = min(lo + spec.shard_size, spec.count)
            programs: List[dict] = []
            for i in range(lo, hi):
                seed = spec.seed + i
                generated = generate_program(seed, config)
                source = generated.render()
                programs.append({
                    "seed": seed,
                    "name": generated.name,
                    "sha256": hashlib.sha256(source.encode()).hexdigest(),
                    "source": source,
                })
            digest = _payload_hash(programs)
            file_name = "shard-{:04d}-{}.json".format(shard_index, digest[:12])
            shard_obj = {
                "schema": CORPUS_SCHEMA_VERSION,
                "kind": "corpus_shard",
                "index": shard_index,
                "sha256": digest,
                "programs": programs,
            }
            (out_dir / file_name).write_text(
                json.dumps(shard_obj, sort_keys=True) + "\n")
            info = ShardInfo(
                index=shard_index, file=file_name,
                programs=len(programs), sha256=digest,
            )
            # One line per shard, written as it completes: the sidecar
            # is itself a stream, so generation memory stays flat too
            # (`shards` is only accumulated for the return value).
            shards_file.write(json.dumps(info.to_json(), sort_keys=True) + "\n")
            shards.append(info)
            if progress is not None:
                progress(shard_index + 1, n_shards)
    manifest = CorpusManifest(spec=spec, shards=tuple(shards))
    (out_dir / MANIFEST_NAME).write_text(
        json.dumps(manifest.to_json(), indent=2, sort_keys=True) + "\n")
    metrics.registry().new_counter("corpus.gen.programs").inc(spec.count)
    return manifest


# ----------------------------------------------------------------------
# Loading and verification


def load_manifest_header(corpus_dir: Path) -> CorpusHeader:
    """The constant-size manifest header — never the shard list.

    Accepts v1 (inline shard list, carried along for
    :func:`iter_shards`) and v2 (``shards.jsonl`` sidecar) corpora.
    """
    path = Path(corpus_dir) / MANIFEST_NAME
    try:
        obj = json.loads(path.read_text())
    except json.JSONDecodeError as err:
        raise ValueError("{}: not JSON: {}".format(path, err))
    if not isinstance(obj, dict) or obj.get("kind") != "corpus_manifest":
        raise ValueError("{}: not a corpus manifest".format(path))
    schema = obj.get("schema")
    if schema not in (1, CORPUS_SCHEMA_VERSION):
        raise ValueError("{}: unknown schema version {!r}".format(
            path, schema))
    spec = CorpusSpec.from_json(obj["spec"])
    inline = None
    shards_file = None
    if schema == 1:
        inline = tuple(
            ShardInfo(index=s["index"], file=s["file"],
                      programs=s["programs"], sha256=s["sha256"])
            for s in obj["shards"]
        )
        n_shards = len(inline)
        programs = sum(s.programs for s in inline)
    else:
        shards_file = obj.get("shards_file", SHARDS_NAME)
        n_shards = int(obj["n_shards"])
        programs = int(obj["programs"])
    return CorpusHeader(
        schema=schema, spec=spec, programs=programs, n_shards=n_shards,
        shards_file=shards_file, inline_shards=inline,
    )


def iter_shards(corpus_dir: Path,
                header: Optional[CorpusHeader] = None):
    """Yield :class:`ShardInfo` one at a time, in index order.

    v2 corpora stream ``shards.jsonl`` line by line — memory stays
    constant no matter how many shards the corpus has; v1 corpora yield
    from the manifest's inline list.  Index density is checked as the
    stream advances, and the final count must match the header.
    """
    corpus_dir = Path(corpus_dir)
    if header is None:
        header = load_manifest_header(corpus_dir)
    if header.inline_shards is not None:
        expected = 0
        for info in header.inline_shards:
            if info.index != expected:
                raise ValueError("{}: shard indices are not dense".format(
                    corpus_dir / MANIFEST_NAME))
            expected += 1
            yield info
    else:
        sidecar = corpus_dir / header.shards_file
        expected = 0
        with open(sidecar) as f:
            for line in f:
                if not line.strip():
                    continue
                obj = json.loads(line)
                info = ShardInfo(index=obj["index"], file=obj["file"],
                                 programs=obj["programs"],
                                 sha256=obj["sha256"])
                if info.index != expected:
                    raise ValueError(
                        "{}: shard indices are not dense".format(sidecar))
                expected += 1
                yield info
        if expected != header.n_shards:
            raise ValueError(
                "{}: {} shard lines but manifest says {}".format(
                    sidecar, expected, header.n_shards))


def load_manifest(corpus_dir: Path) -> CorpusManifest:
    """Parse and validate a corpus, materialising the full shard list.

    Convenience for verification, benchmarks and tests; the streaming
    pair (:func:`load_manifest_header` + :func:`iter_shards`) is what
    batch drivers use.
    """
    header = load_manifest_header(corpus_dir)
    shards = tuple(iter_shards(corpus_dir, header))
    return CorpusManifest(spec=header.spec, shards=shards)


def load_shard(corpus_dir: Path, info: ShardInfo,
               verify: bool = True) -> List[dict]:
    """The program entries of one shard, hash-checked against the
    manifest unless ``verify=False``."""
    path = Path(corpus_dir) / info.file
    obj = json.loads(path.read_text())
    programs = obj.get("programs")
    if not isinstance(programs, list):
        raise ValueError("{}: malformed shard (no programs)".format(path))
    if verify:
        digest = _payload_hash(programs)
        if digest != info.sha256 or digest != obj.get("sha256"):
            raise ValueError(
                "{}: content hash mismatch (manifest {}, got {})".format(
                    path, info.sha256[:12], digest[:12]))
    return programs


def verify_corpus(corpus_dir: Path) -> CorpusManifest:
    """Hash-check every shard against the manifest; returns it when ok.

    Shard infos stream, so verification holds one shard in memory at a
    time (the returned manifest still carries the full info list —
    infos are four small fields per shard, not shard payloads).
    """
    header = load_manifest_header(corpus_dir)
    shards: List[ShardInfo] = []
    for info in iter_shards(corpus_dir, header):
        load_shard(corpus_dir, info, verify=True)
        shards.append(info)
    return CorpusManifest(spec=header.spec, shards=tuple(shards))


# ----------------------------------------------------------------------
# Sharded run driver


@dataclass
class _RunOptions:
    """Everything a shard worker needs (must stay picklable)."""

    corpus_dir: str
    analyses: Tuple[str, ...]
    engine: str
    oracles: bool
    per_program_seconds: Optional[float]
    max_steps: int
    in_process: bool  # jobs=1: keep parent registry/recorder untouched
    spec: Optional[dict] = None  # generator dials, for the oracle mode


@dataclass
class ShardOutcome:
    """Result of one shard's bulkhead (always produced, even on crash)."""

    index: int
    file: str
    programs: int = 0
    compiled: int = 0
    oracle_checked: int = 0
    references: int = 0
    local_pairs: int = 0
    global_pairs: int = 0
    seconds: float = 0.0
    failures: List[dict] = field(default_factory=list)
    counters: Optional[List[dict]] = None  # worker registry snapshot

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "file": self.file,
            "programs": self.programs,
            "compiled": self.compiled,
            "oracle_checked": self.oracle_checked,
            "references": self.references,
            "local_pairs": self.local_pairs,
            "global_pairs": self.global_pairs,
            "seconds": round(self.seconds, 3),
            "failures": self.failures,
        }


@dataclass
class CorpusRunReport:
    """Deterministic merge of every shard outcome, by shard index."""

    corpus_dir: str
    engine: str
    jobs: int
    analyses: Tuple[str, ...]
    shards: List[ShardOutcome] = field(default_factory=list)
    #: Shards the watchdog gave up on after bounded retries — reported,
    #: never silently dropped.  Entries: index/file/attempts/reason.
    quarantined: List[dict] = field(default_factory=list)
    duration: float = 0.0

    @property
    def programs(self) -> int:
        return sum(s.programs for s in self.shards)

    @property
    def compiled(self) -> int:
        return sum(s.compiled for s in self.shards)

    @property
    def references(self) -> int:
        return sum(s.references for s in self.shards)

    @property
    def local_pairs(self) -> int:
        return sum(s.local_pairs for s in self.shards)

    @property
    def global_pairs(self) -> int:
        return sum(s.global_pairs for s in self.shards)

    @property
    def failures(self) -> List[dict]:
        out: List[dict] = []
        for shard in self.shards:
            out.extend(shard.failures)
        return out

    @property
    def ok(self) -> bool:
        return not self.failures and not self.quarantined

    def throughput(self) -> float:
        """Programs per second of wall clock (the ledger's headline)."""
        if self.duration <= 0:
            return 0.0
        return self.programs / self.duration

    def to_json(self) -> dict:
        return {
            "corpus_dir": self.corpus_dir,
            "engine": self.engine,
            "jobs": self.jobs,
            "analyses": list(self.analyses),
            "programs": self.programs,
            "compiled": self.compiled,
            "references": self.references,
            "local_pairs": self.local_pairs,
            "global_pairs": self.global_pairs,
            "ok": self.ok,
            "failures": self.failures,
            "quarantined": self.quarantined,
            "duration_seconds": round(self.duration, 3),
            "programs_per_second": round(self.throughput(), 2),
            "shards": [s.to_json() for s in self.shards],
        }


def _count_program(entry: dict, options: _RunOptions,
                   outcome: ShardOutcome) -> None:
    """Table 5 (and optionally the oracle battery) for one program."""
    from repro import compile_program
    from repro.analysis.alias_pairs import AliasPairCounter

    program = compile_program(entry["source"], entry["name"])
    outcome.compiled += 1
    ir = program.pipeline.base().program
    for analysis_name in options.analyses:
        analysis = program.analysis(analysis_name)
        report = AliasPairCounter(ir, analysis, engine=options.engine).count()
        outcome.references += report.references
        outcome.local_pairs += report.local_pairs
        outcome.global_pairs += report.global_pairs
    if options.oracles:
        from repro.qa.oracles import check_program

        # Determinism doubles as integrity: the recorded seed must
        # regenerate the stored bytes before the oracles vouch for it.
        if options.spec is not None:
            config = CorpusSpec.from_json(options.spec).gen_config()
            regenerated = generate_program(entry["seed"], config).render()
            digest = hashlib.sha256(regenerated.encode()).hexdigest()
            if digest != entry["sha256"]:
                raise ValueError(
                    "seed {} does not regenerate the stored program {}"
                    .format(entry["seed"], entry["name"]))
        oracle = check_program(entry["source"], name=entry["name"],
                               seed=entry["seed"], max_steps=options.max_steps)
        outcome.oracle_checked += 1
        if not oracle.ok:
            first = oracle.violations[0]
            outcome.failures.append({
                "seed": entry["seed"],
                "name": entry["name"],
                "phase": first.phase,
                "error": first.kind,
                "message": first.message,
            })


def _process_shard(task: Tuple) -> ShardOutcome:
    """Worker entry point: one shard inside its bulkhead.

    Runs in a pool process for ``jobs>1`` (where the inherited registry
    is reset so the returned snapshot is exactly this shard's counters)
    or inline for ``jobs=1`` (where counters land in the parent registry
    directly and no snapshot is shipped).  The task tuple optionally
    carries the watchdog's retry ``attempt`` so chaos rules can target
    "first attempt only" (transient) vs "every attempt" (poison).

    A forked worker also checks ``REPRO_TRACEPARENT``: when the driver
    exported a *sampled* trace context, the shard runs inside its own
    collecting trace scope parented under the driver's span, and the
    worker flushes a ``corpus-worker`` record to the trace store named
    by ``REPRO_TRACE_STORE`` — this is what lets ``repro trace show``
    reconstruct client → daemon → forked-worker as one tree
    (DESIGN.md §6k).  Pool workers re-mint their process token after
    the fork, so records from different workers never collide.
    """
    from repro.obs import sampler as tracing

    in_process = task[1].in_process
    if not in_process:
        obs.reset_inherited_trace_state()
    ctx = None if in_process else tracing.context_from_env()
    if ctx is None or not ctx.sampled:
        return _process_shard_inner(task)
    scope = obs.trace_scope(ctx.trace_id, collect=True,
                            remote_parent=(ctx.proc, ctx.span_id))
    with scope:
        with obs.span("corpus.shard.worker", shard=task[0]["index"],
                      attempt=task[2] if len(task) > 2 else 0):
            outcome = _process_shard_inner(task)
    store_dir = os.environ.get(tracing.TRACE_STORE_ENV)
    if store_dir:
        from repro.obs.tracestore import TraceStore, make_record

        # append() never raises; a torn or failing store must not cost
        # the shard its outcome.
        TraceStore(store_dir).append(make_record(
            scope, origin="corpus-worker", op="corpus.shard",
            ms=outcome.seconds * 1000.0,
            ok=not outcome.failures, unit=outcome.file))
    return outcome


def _process_shard_inner(task: Tuple) -> ShardOutcome:
    if len(task) == 2:
        info_obj, options = task
        attempt = 0
    else:
        info_obj, options, attempt = task
    outcome = ShardOutcome(index=info_obj["index"], file=info_obj["file"])
    started = time.perf_counter()
    if not options.in_process:
        metrics.registry().reset()
    # Forked workers inherit the armed chaos plan.  The kill point is
    # gated off the in-process path — os._exit there would take the
    # driver down, which is the one thing chaos must never do.
    chaos.fire("corpus.shard_hang", shard=info_obj["index"], attempt=attempt)
    if not options.in_process:
        chaos.fire("corpus.worker_kill", shard=info_obj["index"],
                   attempt=attempt)
    try:
        info = ShardInfo(**info_obj)
        programs = load_shard(Path(options.corpus_dir), info, verify=True)
        for entry in programs:
            outcome.programs += 1
            try:
                with guarded(options.per_program_seconds,
                             "corpus program {}".format(entry["name"])):
                    _count_program(entry, options, outcome)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # per-program bulkhead
                outcome.failures.append({
                    "seed": entry.get("seed"),
                    "name": entry.get("name"),
                    "phase": "program",
                    "error": type(exc).__name__,
                    "message": str(exc),
                })
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:  # per-shard bulkhead
        outcome.failures.append({
            "seed": None,
            "name": info_obj["file"],
            "phase": "shard",
            "error": type(exc).__name__,
            "message": str(exc),
        })
    outcome.seconds = time.perf_counter() - started
    if not options.in_process:
        outcome.counters = metrics.registry().snapshot()
    return outcome


def _merge_worker_counters(snapshot: List[dict]) -> None:
    """Fold one worker registry snapshot into the parent registry.

    Counters accumulate into the shared child for the same series;
    gauges adopt the worker's last value; histograms are summarised by
    their event count under a ``.events`` counter (bucket-level merge is
    not worth carrying across the pipe).
    """
    registry = metrics.registry()
    for entry in snapshot:
        labels = entry["labels"]
        if entry["kind"] == "counter":
            if entry["value"]:
                registry.counter(entry["name"], **labels).inc(entry["value"])
        elif entry["kind"] == "gauge":
            registry.gauge(entry["name"], **labels).set(entry["value"])
        elif entry["kind"] == "histogram" and entry.get("count"):
            registry.counter(entry["name"] + ".events", **labels).inc(
                entry["count"])


def default_jobs() -> int:
    return os.cpu_count() or 1


#: Watchdog poll interval, seconds.
_POOL_POLL_SECONDS = 0.02


def _run_sharded_pool(
    tasks,
    jobs: int,
    shard_timeout_seconds: Optional[float],
    max_shard_retries: int,
) -> Tuple[List[ShardOutcome], List[dict]]:
    """Fan shards over a pool with a hung/dead-worker watchdog.

    ``imap_unordered`` cannot survive a worker death: a killed worker's
    task simply never produces a result and the iterator blocks
    forever.  This scheduler submits via ``apply_async`` in a bounded
    window (``jobs * 2`` in flight, preserving the streaming-laziness
    of the task generator) and polls each pending handle itself, so
    *hang* and *death* collapse into one observable — the handle is not
    ready within ``shard_timeout_seconds``.  Timed-out shards are
    resubmitted up to ``max_shard_retries`` times (a transient kill
    heals; a late straggler result from the abandoned attempt is
    dropped, never double-counted), then **quarantined**: recorded with
    their attempt count and reported in the run JSON rather than
    silently missing.  ``Pool.__exit__`` terminates the pool, which
    also reaps workers still stuck in a hung shard.
    """
    registry = metrics.registry()
    outcomes: List[ShardOutcome] = []
    quarantined: List[dict] = []
    window = max(jobs * 2, 2)
    pending: List[dict] = []
    tasks_iter = iter(tasks)
    exhausted = False
    with multiprocessing.Pool(processes=jobs) as pool:

        def submit(info_obj: dict, options: _RunOptions,
                   attempt: int) -> None:
            pending.append({
                "handle": pool.apply_async(
                    _process_shard, ((info_obj, options, attempt),)),
                "info": info_obj,
                "options": options,
                "attempt": attempt,
                "started": time.monotonic(),
            })

        while pending or not exhausted:
            while not exhausted and len(pending) < window:
                try:
                    info_obj, options, attempt = next(tasks_iter)
                except StopIteration:
                    exhausted = True
                    break
                submit(info_obj, options, attempt)
            if not pending:
                continue
            progressed = False
            now = time.monotonic()
            for entry in list(pending):
                if entry["handle"].ready():
                    pending.remove(entry)
                    progressed = True
                    outcomes.append(entry["handle"].get())
                elif (shard_timeout_seconds is not None
                      and now - entry["started"] > shard_timeout_seconds):
                    pending.remove(entry)
                    progressed = True
                    if entry["attempt"] < max_shard_retries:
                        registry.counter("corpus.shard.retries").inc()
                        submit(entry["info"], entry["options"],
                               entry["attempt"] + 1)
                    else:
                        registry.counter("corpus.shard.quarantined").inc()
                        quarantined.append({
                            "index": entry["info"]["index"],
                            "file": entry["info"]["file"],
                            "attempts": entry["attempt"] + 1,
                            "reason": "shard exceeded {}s timeout on every "
                                      "attempt (hung or killed worker)"
                                      .format(shard_timeout_seconds),
                        })
            if not progressed:
                time.sleep(_POOL_POLL_SECONDS)
    return outcomes, quarantined


def run_corpus(
    corpus_dir: Path,
    jobs: Optional[int] = None,
    analyses: Optional[Sequence[str]] = None,
    engine: str = "bulk",
    oracles: bool = False,
    per_program_seconds: Optional[float] = PER_PROGRAM_SECONDS,
    max_steps: int = 400_000,
    max_shards: Optional[int] = None,
    shard_timeout_seconds: Optional[float] = None,
    max_shard_retries: int = 1,
    progress: Optional[Callable[[ShardOutcome], None]] = None,
) -> CorpusRunReport:
    """Drive Table 5 counting (and optionally the oracle battery) over
    every shard of a corpus, ``jobs`` shards at a time.

    ``shard_timeout_seconds`` arms the hung/dead-worker watchdog
    (``jobs > 1`` only): shards whose worker hangs or dies retry up to
    ``max_shard_retries`` times and are then quarantined into
    ``report.quarantined``."""
    from repro.analysis.openworld import ANALYSIS_NAMES

    from itertools import islice

    corpus_dir = Path(corpus_dir)
    header = load_manifest_header(corpus_dir)
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    analyses = tuple(analyses) if analyses else tuple(ANALYSIS_NAMES)
    n_shards = header.n_shards
    if max_shards is not None:
        n_shards = min(n_shards, max_shards)
    options = _RunOptions(
        corpus_dir=str(corpus_dir),
        analyses=analyses,
        engine=engine,
        oracles=oracles,
        per_program_seconds=per_program_seconds,
        max_steps=max_steps,
        in_process=(jobs == 1),
        spec=header.spec.to_json(),
    )
    # Shard infos stream off disk one line at a time; the task iterator
    # is consumed lazily by the scheduler's submission window, so the
    # driver's footprint stays constant even for >100k-program corpora.
    tasks = ((info.to_json(), options, 0)
             for info in islice(iter_shards(corpus_dir, header), n_shards))
    report = CorpusRunReport(
        corpus_dir=str(corpus_dir), engine=engine, jobs=jobs,
        analyses=analyses)
    started = time.monotonic()
    with obs.span("corpus.run", shards=n_shards, jobs=jobs, engine=engine):
        if jobs == 1:
            outcomes = [_process_shard(task) for task in tasks]
        else:
            # fork keeps the workers cheap; the registry reset inside
            # _process_shard makes the inherited state irrelevant.
            outcomes, report.quarantined = _run_sharded_pool(
                tasks, jobs, shard_timeout_seconds, max_shard_retries)
        outcomes.sort(key=lambda o: o.index)  # deterministic merge order
        report.quarantined.sort(key=lambda q: q["index"])
        registry = metrics.registry()
        for outcome in outcomes:
            if outcome.counters is not None:
                _merge_worker_counters(outcome.counters)
                outcome.counters = None
            registry.new_counter("corpus.shard.programs").inc(outcome.programs)
            registry.new_counter("corpus.shard.pairs").inc(
                outcome.local_pairs + outcome.global_pairs)
            registry.new_counter("corpus.shard.seconds").inc(outcome.seconds)
            with obs.span("corpus.shard", index=outcome.index,
                          programs=outcome.programs):
                pass  # marker span: shard boundaries in the trace timeline
            report.shards.append(outcome)
            if progress is not None:
                progress(outcome)
    report.duration = time.monotonic() - started
    registry.new_counter("corpus.run.shards").inc(len(report.shards))
    return report


# ----------------------------------------------------------------------
# Engine benchmark over a corpus


#: Fork-inherited arena for :func:`bench_corpus` worker processes; set
#: in the parent immediately before the pool forks.
_SHARED_ARENA = None


def _count_arena_range(bounds: Tuple[int, int]) -> List[Tuple[int, int, int]]:
    """Pool worker: count matrices ``[lo, hi)`` from the shared arena.

    The arena mmap is inherited from the parent over ``fork``, so every
    worker reads the same physical pages — no per-worker pickled copy.
    """
    lo, hi = bounds
    return [_SHARED_ARENA.matrix(i).count_pairs().counts()
            for i in range(lo, hi)]


def bench_corpus(
    corpus_dir: Path,
    analyses: Optional[Sequence[str]] = None,
    repeats: int = 1,
    max_shards: Optional[int] = None,
    jobs: int = 1,
) -> Dict[str, float]:
    """Per-phase seconds of the Table 5 count over a corpus, per engine.

    Compiles every program once, then times four phases ``repeats``
    times over the same inputs:

    * ``corpus.table5.fast``  — the PR 1 fast engine, which re-runs its
      partition + representative queries on every count;
    * ``corpus.bulk.build``   — building each program's bitset matrices
      (paid once; matrices are reusable and picklable);
    * ``corpus.table5.bulk``  — re-counting from the prebuilt matrices
      with pure kernels (the bulk hot path);
    * ``corpus.table5.bulk_shared`` — re-counting from one read-only
      mmap **arena** of the same matrices (lazy big-int views, zero
      per-matrix copies); with ``jobs > 1`` the count fans out over a
      forked pool whose workers inherit the mapping, sharing one set of
      physical pages instead of pickling matrices per worker.

    Counts are asserted equal between engines (and between the arena
    and the in-memory matrices) on every program, so the benchmark
    doubles as a corpus-wide differential test.
    """
    from repro import compile_program
    from repro.analysis.alias_pairs import AliasPairCounter
    from repro.analysis.bulk import BulkAliasMatrix
    from repro.analysis.openworld import ANALYSIS_NAMES

    corpus_dir = Path(corpus_dir)
    manifest = load_manifest(corpus_dir)
    analyses = tuple(analyses) if analyses else tuple(ANALYSIS_NAMES)
    if repeats < 1:
        raise ValueError("repeats must be >= 1")

    shard_infos = list(manifest.shards)
    if max_shards is not None:
        shard_infos = shard_infos[:max_shards]
    # One-time setup outside every timed phase: compile, build analyses,
    # pre-collect the canonical reference maps.
    counters: List[AliasPairCounter] = []
    with obs.span("corpus.bench.setup"):
        for info in shard_infos:
            for entry in load_shard(corpus_dir, info, verify=True):
                program = compile_program(entry["source"], entry["name"])
                ir = program.pipeline.base().program
                for analysis_name in analyses:
                    counters.append(AliasPairCounter(
                        ir, program.analysis(analysis_name), engine="fast"))

    phases = {"corpus.table5.fast": 0.0, "corpus.bulk.build": 0.0,
              "corpus.table5.bulk": 0.0}
    fast_counts: List[Tuple[int, int, int]] = []
    for _ in range(repeats):
        with obs.span("corpus.table5.fast", programs=len(counters)):
            started = time.perf_counter()
            fast_counts = [c._count_fast().counts() for c in counters]
            phases["corpus.table5.fast"] += time.perf_counter() - started

    with obs.span("corpus.bulk.build", programs=len(counters)):
        started = time.perf_counter()
        matrices = [
            BulkAliasMatrix.from_references(c.references, c.analysis)
            for c in counters
        ]
        phases["corpus.bulk.build"] += time.perf_counter() - started

    bulk_counts: List[Tuple[int, int, int]] = []
    for _ in range(repeats):
        with obs.span("corpus.table5.bulk", programs=len(matrices)):
            started = time.perf_counter()
            bulk_counts = [m.count_pairs().counts() for m in matrices]
            phases["corpus.table5.bulk"] += time.perf_counter() - started

    for i, (fast, bulk) in enumerate(zip(fast_counts, bulk_counts)):
        if fast != bulk:
            raise AssertionError(
                "corpus bench: engines disagree on program {} ({}): "
                "fast={} bulk={}".format(
                    i, counters[i].analysis.name, fast, bulk))

    shared_counts = _bench_shared_arena(matrices, phases, repeats, jobs)
    for i, (bulk, shared) in enumerate(zip(bulk_counts, shared_counts)):
        if bulk != shared:
            raise AssertionError(
                "corpus bench: arena disagrees on matrix {} ({}): "
                "bulk={} shared={}".format(
                    i, counters[i].analysis.name, bulk, shared))

    phases["corpus.bench.programs"] = float(len(counters))
    return phases


def _bench_shared_arena(matrices, phases: Dict[str, float], repeats: int,
                        jobs: int) -> List[Tuple[int, int, int]]:
    """Time ``corpus.table5.bulk_shared`` and return the arena counts."""
    import tempfile

    from repro.analysis.bulkarena import open_arena, write_arena

    global _SHARED_ARENA
    shared_counts: List[Tuple[int, int, int]] = []
    with tempfile.TemporaryDirectory(prefix="repro-arena-") as tmp:
        arena_path = Path(tmp) / "matrices.arena"
        with obs.span("corpus.bulk.arena_write", matrices=len(matrices)):
            started = time.perf_counter()
            write_arena(arena_path, matrices)
            phases["corpus.bulk.arena_write"] = time.perf_counter() - started
        phases["corpus.bulk.arena_bytes"] = float(
            arena_path.stat().st_size)
        with open_arena(arena_path) as arena:
            n = len(arena)
            chunk = max(1, (n + max(jobs, 1) - 1) // max(jobs, 1))
            bounds = [(lo, min(lo + chunk, n)) for lo in range(0, n, chunk)]
            phases["corpus.table5.bulk_shared"] = 0.0
            for _ in range(repeats):
                with obs.span("corpus.table5.bulk_shared", matrices=n,
                              jobs=jobs):
                    started = time.perf_counter()
                    if jobs <= 1 or n == 0:
                        shared_counts = [arena.matrix(i).count_pairs().counts()
                                         for i in range(n)]
                    else:
                        # The pool must fork *after* the arena is open so
                        # children inherit the mapping.
                        _SHARED_ARENA = arena
                        try:
                            with multiprocessing.Pool(processes=jobs) as pool:
                                shared_counts = [
                                    c for part in pool.map(
                                        _count_arena_range, bounds)
                                    for c in part
                                ]
                        finally:
                            _SHARED_ARENA = None
                    phases["corpus.table5.bulk_shared"] += (
                        time.perf_counter() - started)
    return shared_counts
