"""QA subsystem: soundness fuzzing, crash isolation, resource guards.

TBAA's value proposition is *soundness by construction* for a type-safe
language, and PR 1 added a second alias-query engine whose answers must
stay bit-identical to the reference.  Neither invariant survives on
faith; this package checks both continuously against adversarial input:

* :mod:`repro.qa.generator` — a deterministic, seeded, size-bounded
  MiniM3 program generator emitting only type-correct programs;
* :mod:`repro.qa.oracles` — per-program invariant checks: the refinement
  hierarchy ``TypeDecl ⊇ FieldTypeDecl ⊇ SMFieldTypeRefs``, open-world ⊇
  closed-world, fast engine ≡ reference engine, cache-churn stability,
  and a **dynamic soundness oracle** that executes the program and
  asserts every pair of access paths observed at one heap address is
  reported may-alias by every analysis;
* :mod:`repro.qa.reduce` — a delta-debugging reducer shrinking failing
  programs to minimal ``.m3`` reproducers, dumped as crash bundles;
* :mod:`repro.qa.guards` — wall-clock deadlines and budget plumbing
  (step budgets and parser caps live with their owners);
* :mod:`repro.qa.runner` — the fault-isolating batch runner behind
  ``repro fuzz``: every program runs in a try/except bulkhead, failures
  land in a machine-readable JSON report, the rest of the run completes.

Import note: :mod:`repro.runtime` and :mod:`repro.analysis` import
:mod:`repro.qa.guards` at module load, which executes this ``__init__``
— so everything *except* guards is exported lazily (PEP 562) to avoid
an import cycle through the heavier QA modules.
"""

from repro.qa.guards import Deadline, ResourceLimitError, check_active, guarded

__all__ = [
    "Deadline",
    "ResourceLimitError",
    "check_active",
    "guarded",
    "GenConfig",
    "GeneratedProgram",
    "generate_program",
    "OracleReport",
    "OracleViolation",
    "check_program",
    "reduce_program",
    "write_crash_bundle",
    "FailureRecord",
    "FuzzReport",
    "run_fuzz",
]

_LAZY = {
    "GenConfig": "repro.qa.generator",
    "GeneratedProgram": "repro.qa.generator",
    "generate_program": "repro.qa.generator",
    "OracleReport": "repro.qa.oracles",
    "OracleViolation": "repro.qa.oracles",
    "check_program": "repro.qa.oracles",
    "reduce_program": "repro.qa.reduce",
    "write_crash_bundle": "repro.qa.reduce",
    "FailureRecord": "repro.qa.runner",
    "FuzzReport": "repro.qa.runner",
    "run_fuzz": "repro.qa.runner",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError("module {!r} has no attribute {!r}".format(__name__, name))
    import importlib

    return getattr(importlib.import_module(module_name), name)
