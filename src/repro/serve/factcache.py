"""The versioned on-disk fact store behind ``repro serve``.

One **partition** per module content hash, holding that module's
:class:`~repro.analysis.facts.FactBundle` (per-procedure hashes, both
worlds' flattened facts, and every served configuration's bulk matrix +
Table 5 counts).  Partitions are pickle files named by the content hash,
plus an ``index.json`` carrying sizes and an LRU clock, so:

* an edit to one module only invalidates (i.e. re-keys) its own
  partition — untouched modules keep answering from disk;
* a schema or package version change reads as a **miss**, never a
  crash: :func:`~repro.analysis.facts.bundle_is_current` gates every
  load, and corrupt files are quarantined as misses too;
* the store enforces a byte budget with least-recently-used eviction
  (``serve.factcache.evict`` counts what the cap cost us).

Counters (shared series in :mod:`repro.obs.metrics`):
``serve.factcache.hit`` / ``.miss`` / ``.store`` / ``.evict`` /
``.corrupt`` and the ``serve.factcache.bytes`` gauge.
"""

import json
import os
import pickle
import threading
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.facts import FACTS_SCHEMA_VERSION, FactBundle, bundle_is_current
from repro.obs import core as obs
from repro.obs import metrics
from repro.qa import chaos

#: Index file name inside the cache root.
INDEX_NAME = "index.json"

#: Bumped whenever the on-disk layout (not the bundle payload) changes.
STORE_LAYOUT_VERSION = 1

#: Default size cap: generous for corpora of small modules, small enough
#: that a forgotten daemon cannot eat a disk.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def _counter(name: str):
    return metrics.registry().counter("serve.factcache." + name)


class FactStore:
    """Content-addressed, size-capped partition store for fact bundles."""

    def __init__(self, root: Path, max_bytes: Optional[int] = DEFAULT_MAX_BYTES):
        self.root = Path(root)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self.root.mkdir(parents=True, exist_ok=True)
        # key -> {"file", "bytes", "clock", "module"}
        self._index: Dict[str, dict] = {}
        self._clock = 0
        self._load_index()

    # -- index ----------------------------------------------------------

    def _index_path(self) -> Path:
        return self.root / INDEX_NAME

    def _load_index(self) -> None:
        try:
            obj = json.loads(self._index_path().read_text())
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(obj, dict) or obj.get("layout") != STORE_LAYOUT_VERSION:
            return
        entries = obj.get("entries")
        if isinstance(entries, dict):
            self._index = {
                key: entry for key, entry in entries.items()
                if isinstance(entry, dict) and "file" in entry
            }
            self._clock = max(
                [int(e.get("clock", 0)) for e in self._index.values()] or [0])

    def _write_index(self) -> None:
        payload = {
            "layout": STORE_LAYOUT_VERSION,
            "facts_schema": FACTS_SCHEMA_VERSION,
            "entries": self._index,
        }
        tmp = self._index_path().with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self._index_path())

    def _touch(self, key: str) -> None:
        self._clock += 1
        self._index[key]["clock"] = self._clock

    # -- introspection --------------------------------------------------

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._index)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(int(e.get("bytes", 0)) for e in self._index.values())

    def __len__(self) -> int:
        return len(self._index)

    # -- load/store -----------------------------------------------------

    def _partition_path(self, key: str) -> Path:
        return self.root / "facts-{}.pkl".format(key[:32])

    def load(self, key: str) -> Optional[FactBundle]:
        """The bundle stored under *key*, or ``None`` (counted as a miss,
        a corrupt file, or a schema/version mismatch).

        Raises :class:`OSError` only for whole-store I/O failure (the
        chaos ``factstore.load`` point simulates it); a *readable but
        corrupt* partition is always a miss, never an exception.
        """
        chaos.fire("factstore.load", key=key[:12])
        with self._lock:
            entry = self._index.get(key)
            if entry is None:
                _counter("miss").inc()
                obs.trace_note("factstore", "miss")
                return None
            path = self.root / entry["file"]
            if chaos.fire("factstore.corrupt", key=key[:12]) is not None:
                self._truncate_partition(path)
            with obs.span("serve.factcache.load", key=key[:12]):
                try:
                    with open(path, "rb") as f:
                        bundle = pickle.load(f)
                except (OSError, pickle.UnpicklingError, EOFError,
                        AttributeError, ImportError):
                    _counter("corrupt").inc()
                    obs.trace_note("factstore", "corrupt")
                    self._drop(key)
                    return None
            if not bundle_is_current(bundle) or bundle.module_hash != key:
                # Older schema, older package, or a hash collision in the
                # truncated file name: all read as misses.
                _counter("corrupt").inc()
                obs.trace_note("factstore", "corrupt")
                self._drop(key)
                return None
            self._touch(key)
            self._write_index()
            _counter("hit").inc()
            obs.trace_note("factstore", "hit")
            return bundle

    @staticmethod
    def _truncate_partition(path: Path) -> None:
        """Chaos ``factstore.corrupt``: chop the partition mid-byte."""
        try:
            size = path.stat().st_size
            with open(path, "r+b") as f:
                f.truncate(max(1, size // 2))
        except OSError:
            pass

    def store(self, bundle: FactBundle) -> None:
        """Persist *bundle* under its module hash; evict over budget.

        Raises :class:`OSError` on write failure (the chaos
        ``factstore.store`` point simulates it); the session layer
        treats that as degraded mode, never as a lost answer.
        """
        chaos.fire("factstore.store", key=bundle.module_hash[:12])
        key = bundle.module_hash
        path = self._partition_path(key)
        with self._lock:
            with obs.span("serve.factcache.store", key=key[:12],
                          configs=bundle.n_configs()):
                tmp = path.with_suffix(".tmp")
                with open(tmp, "wb") as f:
                    pickle.dump(bundle, f, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            self._index[key] = {
                "file": path.name,
                "bytes": path.stat().st_size,
                "module": bundle.module_name,
                "clock": 0,
            }
            self._touch(key)
            _counter("store").inc()
            self._evict_over_budget(protect=key)
            self._write_index()
            metrics.registry().gauge("serve.factcache.bytes").set(
                sum(int(e.get("bytes", 0)) for e in self._index.values()))

    def _drop(self, key: str) -> None:
        entry = self._index.pop(key, None)
        if entry is not None:
            try:
                (self.root / entry["file"]).unlink()
            except OSError:
                pass
            self._write_index()

    def _evict_over_budget(self, protect: Optional[str] = None) -> None:
        """LRU-evict partitions until the byte budget holds.

        The just-stored key is protected so a single oversized bundle
        does not evict itself into a store/load ping-pong.
        """
        if self.max_bytes is None:
            return
        total = sum(int(e.get("bytes", 0)) for e in self._index.values())
        victims = sorted(
            (k for k in self._index if k != protect),
            key=lambda k: int(self._index[k].get("clock", 0)))
        for key in victims:
            if total <= self.max_bytes:
                break
            entry = self._index.pop(key)
            total -= int(entry.get("bytes", 0))
            try:
                (self.root / entry["file"]).unlink()
            except OSError:
                pass
            _counter("evict").inc()

    def drop(self, key: str) -> None:
        """Remove one partition (used by tests and cache maintenance)."""
        with self._lock:
            self._drop(key)

    def flush(self) -> None:
        """Force the index to disk (graceful-drain hook).

        Every mutation already writes the index, so this is normally a
        no-op rewrite — but after degraded-mode I/O failures it is the
        last chance to leave a consistent index behind before exit.
        """
        with self._lock:
            try:
                self._write_index()
            except OSError:
                pass  # drain must not die on a still-broken disk
