"""The long-running analysis daemon: JSONL-on-stdio + localhost HTTP.

Both transports speak the same :mod:`repro.serve.protocol` payloads and
dispatch into one :class:`Daemon`:

* **stdio** — each input line is one request object or batch array;
  each produces exactly one output line.  EOF or a ``shutdown`` op ends
  the loop.  This is the transport scripts and editors drive.
* **HTTP** — a :class:`ThreadingHTTPServer` bound to ``127.0.0.1``
  (never a public interface) accepting ``POST /v1/query`` with the same
  JSON payloads, plus ``GET /v1/ping``, ``GET /v1/stats``, ``GET
  /v1/metrics`` (live registry in Prometheus text format) and ``GET
  /v1/requests`` (the recent-request journal).  The port is OS-assigned
  by default and printed/returned so clients can find it.

Observability (DESIGN.md §6j): every request gets a ``trace_id``
(client-supplied or daemon-minted), runs inside a thread-local
:func:`repro.obs.core.trace_scope` so its ``serve.*`` spans carry the
id, and echoes it back in the response — ok *and* error.  ``debug:
true`` requests additionally return their own span tree inline.  Every
request bumps ``serve.request.total`` (and ``.errors`` on failure),
lands its wall time in the ``serve.request.ms`` latency histogram, the
per-op P² quantile gauges (``serve.request.ms.p50/p95/p99``) and the
SLO counters (``serve.slo.ok``/``.breach`` against ``--slo-ms``), and
is journalled into a bounded ring served by ``/v1/requests``; requests
slower than ``--slow-ms`` are sampled into a JSONL access log.
``stats`` exposes the same numbers over the wire.

Failures are answers, not crashes: protocol errors, compile errors and
analysis errors each map to a typed error response and the daemon keeps
serving.  Only :class:`~repro.serve.session.DifferentialMismatch` is
allowed to propagate in tests — over the wire it too becomes an error
response (kind ``differential``), because a disagreeing daemon should
say so loudly rather than die silently.
"""

import json
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional
from urllib.parse import parse_qs, urlparse

from repro import CompileError, __version__
from repro.lang.errors import ResourceLimitError
from repro.obs import core as obs
from repro.obs import metrics, promtext
from repro.obs.burn import BurnTracker
from repro.obs.quantile import QuantileSet
from repro.obs.reqlog import (
    DEFAULT_JOURNAL_SIZE,
    AccessLog,
    RequestJournal,
    RequestRecord,
)
from repro.obs.sampler import DEFAULT_SAMPLE_RATE, HeadSampler
from repro.obs.tracestore import TraceStore, make_record
from repro.obs.traceview import summarize_traces
from repro.obs.reqlog import now as wall_now
from repro.qa import chaos, guards
from repro.serve import protocol
from repro.serve.session import DifferentialMismatch, SessionManager

#: Latency histogram buckets in milliseconds: warm hits are sub-ms,
#: cold compiles tens-to-hundreds of ms.
LATENCY_BUCKETS_MS = (0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
                      250.0, 1000.0, 5000.0)

#: How long a graceful drain waits for in-flight requests, seconds.
DRAIN_TIMEOUT = 30.0

#: Default per-request latency objective, milliseconds (``--slo-ms``).
DEFAULT_SLO_MS = 250.0

#: ``# HELP`` text served on ``/v1/metrics`` for the headline series
#: (promtext emits HELP only when asked, so batch ``BENCH_obs.prom``
#: output is unchanged).
METRIC_HELP = {
    "serve.request.total": "Requests received, by op.",
    "serve.request.errors": "Requests answered with a typed error, by op.",
    "serve.request.ms": "Request wall time in milliseconds, by op.",
    "serve.request.ms.p50": "Streaming P2 median request latency (ms).",
    "serve.request.ms.p95": "Streaming P2 95th-percentile latency (ms).",
    "serve.request.ms.p99": "Streaming P2 99th-percentile latency (ms).",
    "serve.slo.ok": "Requests within the --slo-ms objective, by op.",
    "serve.slo.breach": "Requests over the --slo-ms objective, by op.",
    "serve.slo.burn_rate_5m": "Fraction of requests breaching the SLO "
                              "in the trailing 5 minutes.",
    "serve.slo.burn_rate_1h": "Fraction of requests breaching the SLO "
                              "in the trailing hour.",
    "obs.trace.sampled": "Requests whose span tree was head-sampled.",
    "obs.trace.flushed": "Trace records appended to the trace store.",
}


def mint_trace_id() -> str:
    """A fresh daemon-minted trace id (16 hex chars)."""
    return uuid.uuid4().hex[:16]


class Daemon:
    """Transport-independent request dispatcher over one session manager."""

    def __init__(self, manager: SessionManager,
                 deadline_seconds: Optional[float] = None,
                 slo_ms: float = DEFAULT_SLO_MS,
                 slow_ms: Optional[float] = None,
                 access_log_path: Optional[str] = None,
                 access_log_sample: int = 1,
                 journal_size: int = DEFAULT_JOURNAL_SIZE,
                 sampler: Optional[HeadSampler] = None,
                 trace_store: Optional[TraceStore] = None):
        self.manager = manager
        #: Per-request wall-clock budget; ``None`` serves unbounded.
        self.deadline_seconds = deadline_seconds
        #: Latency objective (ms) the SLO counters judge against.
        self.slo_ms = slo_ms
        #: Always-on head sampling: the default rate keeps tracing live
        #: (and the bench gate honest about its cost) out of the box.
        self.sampler = sampler if sampler is not None \
            else HeadSampler(DEFAULT_SAMPLE_RATE)
        #: Sampled traces flush here; ``None`` samples without storing
        #: (the coin still decides span collection, nothing persists).
        self.trace_store = trace_store
        #: Sliding-window SLO burn rates + exemplars (DESIGN.md §6k).
        self.burn = BurnTracker(slo_ms)
        self.shutdown_event = threading.Event()
        #: Draining daemons answer ping/stats/shutdown but reject new
        #: analysis work with a typed ``unavailable`` error.
        self.draining = False
        #: Ring of recent requests, served by ``GET /v1/requests``.
        self.journal = RequestJournal(journal_size)
        #: Sampled JSONL log of slow requests; None when not configured.
        self.access_log: Optional[AccessLog] = None
        if access_log_path is not None:
            self.access_log = AccessLog(
                access_log_path,
                slow_ms if slow_ms is not None else slo_ms,
                sample=access_log_sample)
        self._quantiles: Dict[str, QuantileSet] = {}
        self._quantiles_lock = threading.Lock()
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self._http_server: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None

    # -- dispatch -------------------------------------------------------

    def handle_request(self, request: protocol.Request) -> dict:
        """One request in, one response dict out; never raises."""
        registry = metrics.registry()
        registry.counter("serve.request.total", op=request.op).inc()
        # Trace identity: a propagated context wins (its id and sampled
        # flag are the whole point of propagation); otherwise a
        # client-chosen or minted id rolls the head-sampler coin.
        try:
            ctx = request.trace_context()
        except ValueError:
            # from_obj validates on ingest; a hand-built Request with a
            # bad header degrades to a fresh trace, never a crash.
            ctx = None
        if ctx is not None:
            trace_id = ctx.trace_id
            sampled = ctx.sampled
        else:
            trace_id = request.trace_id or mint_trace_id()
            sampled = self.sampler.decide(trace_id)
        if sampled:
            registry.counter("obs.trace.sampled").inc()
        with self._inflight_cond:
            if self.draining and request.op in protocol.SOURCE_OPS:
                registry.counter("serve.request.rejected").inc()
                response = protocol.error_response(
                    request.id, "unavailable",
                    "daemon is draining and accepts no new analysis work",
                    trace_id=trace_id)
                self._journal(request, trace_id, 0.0, response, cache=None)
                return response
            self._inflight += 1
        start = time.perf_counter()
        request_deadline: Optional[guards.Deadline] = None
        scope = obs.trace_scope(
            trace_id, collect=sampled or request.debug,
            remote_parent=((ctx.proc, ctx.span_id)
                           if ctx is not None else None))
        try:
            with scope:
                try:
                    with guards.guarded(
                            self.deadline_seconds,
                            "serve request {}".format(request.op)
                    ) as request_deadline:
                        if request_deadline is not None:
                            registry.counter("serve.deadline.installed").inc()
                        chaos.fire("daemon.handler", op=request.op)
                        with obs.span("serve.request." + request.op,
                                      unit=request.name or "?"):
                            result = self._dispatch(request)
                    response = protocol.ok_response(request.id, result,
                                                    trace_id=trace_id)
                except protocol.ProtocolError as err:
                    response = self._error(request, "protocol", err, trace_id)
                except DifferentialMismatch as err:
                    response = self._error(request, "differential", err,
                                           trace_id)
                except CompileError as err:
                    response = self._error(request, "compile", err, trace_id)
                except ResourceLimitError as err:
                    # The per-request deadline and the analysis resource
                    # guards raise the same type; the deadline's own expiry
                    # disambiguates which budget ran out.
                    if request_deadline is not None and \
                            request_deadline.expired():
                        registry.counter("serve.deadline.expired").inc()
                        response = self._error(request, "deadline_exceeded",
                                               err, trace_id)
                    else:
                        response = self._error(request, "resource_limit",
                                               err, trace_id)
                except Exception as err:  # noqa: BLE001 - daemon must not die
                    response = self._error(request, "internal", err, trace_id)
        finally:
            with self._inflight_cond:
                self._inflight -= 1
                self._inflight_cond.notify_all()
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        registry.histogram("serve.request.ms", buckets=LATENCY_BUCKETS_MS,
                           op=request.op).observe(elapsed_ms)
        self._observe_latency(request.op, elapsed_ms)
        self.burn.observe(elapsed_ms, ok=bool(response.get("ok")),
                          trace_id=trace_id)
        if request.debug:
            response["spans"] = scope.tree()
        if sampled and self.trace_store is not None:
            self.trace_store.append(make_record(
                scope, origin="daemon", op=request.op, ms=elapsed_ms,
                ok=bool(response.get("ok")), unit=request.name))
        self._journal(request, trace_id, elapsed_ms, response,
                      cache=scope.notes.get("cache"))
        return response

    def _error(self, request: protocol.Request, kind: str,
               err: Exception, trace_id: Optional[str] = None) -> dict:
        metrics.registry().counter("serve.request.errors", op=request.op).inc()
        return protocol.error_response(request.id, kind, str(err),
                                       trace_id=trace_id)

    # -- per-request accounting -----------------------------------------

    def _observe_latency(self, op: str, elapsed_ms: float) -> None:
        """Feed the P² quantile gauges and SLO counters for one request."""
        registry = metrics.registry()
        quantiles = self._quantiles.get(op)
        if quantiles is None:
            with self._quantiles_lock:
                quantiles = self._quantiles.setdefault(op, QuantileSet())
        quantiles.observe(elapsed_ms)
        for q, estimate in quantiles.snapshot().items():
            if estimate is not None:
                registry.gauge(
                    "serve.request.ms.p{}".format(int(round(q * 100.0))),
                    op=op).set(round(estimate, 3))
        if elapsed_ms <= self.slo_ms:
            registry.counter("serve.slo.ok", op=op).inc()
        else:
            registry.counter("serve.slo.breach", op=op).inc()

    def _journal(self, request: protocol.Request, trace_id: str,
                 elapsed_ms: float, response: dict,
                 cache: Optional[str]) -> None:
        """Ring-journal one finished request; tee slow ones to the log."""
        ok = bool(response.get("ok"))
        error = response.get("error") or {}
        record = RequestRecord(
            op=request.op,
            trace_id=trace_id,
            unit=request.name,
            ms=elapsed_ms,
            ok=ok,
            error_kind=None if ok else error.get("kind"),
            cache=cache,
            ts=wall_now(),
        )
        self.journal.record(record)
        if self.access_log is not None:
            self.access_log.maybe_log(record)

    def metrics_text(self) -> str:
        """The live registry as Prometheus exposition (``/v1/metrics``)."""
        return promtext.render(help_texts=METRIC_HELP)

    def traces_payload(self, query: Dict[str, list]) -> tuple:
        """``GET /v1/traces`` body: trace summaries, or one full trace.

        ``?id=X`` returns that trace's raw records (the cross-process
        tree is the *viewer's* job — the wire carries data, not
        rendering).  Returns ``(status, payload)``.
        """
        if self.trace_store is None:
            return 404, {"ok": False, "error": {
                "kind": "http",
                "message": "daemon has no trace store (--trace-store)"}}
        wanted = query.get("id")
        if wanted:
            records = self.trace_store.trace(wanted[0])
            if not records:
                return 404, {"ok": False, "error": {
                    "kind": "http",
                    "message": "unknown trace {!r}".format(wanted[0])}}
            return 200, {"trace": wanted[0], "records": records}
        limit = None
        raw = query.get("limit")
        if raw:
            try:
                limit = max(0, int(raw[0]))
            except ValueError:
                limit = None
        summaries = summarize_traces(self.trace_store.traces())
        if limit is not None:
            summaries = summaries[:limit]
        return 200, {"traces": summaries,
                     "store": self.trace_store.stats()}

    def _dispatch(self, request: protocol.Request) -> dict:
        op = request.op
        if op == "ping":
            return {"pong": True, "version": __version__,
                    "protocol": protocol.PROTOCOL_VERSION,
                    "degraded": self.manager.degraded,
                    "draining": self.draining,
                    "slo_ms": self.slo_ms}
        if op == "stats":
            stats = self.manager.stats()
            stats["draining"] = self.draining
            stats["slo_ms"] = self.slo_ms
            stats["journal_total"] = self.journal.total
            stats["slo_burn"] = self.burn.snapshot()
            if self.trace_store is not None:
                stats["trace_store"] = self.trace_store.stats()
            # Visible across process boundaries: the cross-process chaos
            # battery reads the child daemon's injection count here.
            stats["counters"]["chaos.injected"] = int(
                metrics.registry().counter("chaos.injected").value)
            return stats
        if op == "shutdown":
            self.shutdown_event.set()
            return {"stopping": True}
        # Source-bearing ops from here on (protocol validated presence).
        session = self.manager.lookup(request.source, name=request.name)
        if op == "alias":
            analysis = request.analysis or "SMFieldTypeRefs"
            counts = self.manager.alias_counts(
                session, analysis, request.open_world)
            return {
                "module": session.name,
                "module_hash": session.module_hash,
                "analysis": analysis,
                "open_world": request.open_world,
                "references": counts[0],
                "local_pairs": counts[1],
                "global_pairs": counts[2],
            }
        if op == "tables":
            if request.worlds == "both":
                world_list = [False, True]
            elif request.worlds is not None:
                world_list = [request.worlds == "open"]
            else:
                world_list = [request.open_world]
            rows = []
            for open_world in world_list:
                rows.extend(self.manager.tables(session, open_world))
            return {
                "module": session.name,
                "module_hash": session.module_hash,
                "open_world": world_list[0] if len(world_list) == 1
                else request.open_world,
                "worlds": request.worlds or
                ("open" if world_list == [True] else "closed"),
                "rows": rows,
            }
        if op == "limit":
            result = self.manager.limit(session, request.analysis)
            result["module"] = session.name
            return result
        if op == "facts":
            summary = self.manager.facts_summary(
                session, request.open_world)
            summary["module"] = session.name
            summary["module_hash"] = session.module_hash
            summary["procedures"] = len(session.bundle.proc_hashes)
            return summary
        raise protocol.ProtocolError("unhandled op {!r}".format(op))

    # -- stdio transport ------------------------------------------------

    def handle_line(self, line: str) -> str:
        """One JSONL input line to one JSONL output line."""
        try:
            parsed = protocol.parse_line(line)
        except protocol.ProtocolError as err:
            metrics.registry().counter("serve.request.errors", op="?").inc()
            return protocol.encode_line(
                protocol.error_response(None, "protocol", str(err)))
        if isinstance(parsed, list):
            return protocol.encode_line(
                [self.handle_request(req) for req in parsed])
        return protocol.encode_line(self.handle_request(parsed))

    def serve_stdio(self, stdin, stdout) -> int:
        """Blocking loop: read lines until EOF or a ``shutdown`` op."""
        for line in stdin:
            if not line.strip():
                continue
            stdout.write(self.handle_line(line))
            stdout.flush()
            if self.shutdown_event.is_set():
                break
        # EOF or shutdown op: same graceful exit as a signal drain —
        # finish anything on the HTTP side, flush the fact store.
        self.drain()
        return 0

    # -- HTTP transport -------------------------------------------------

    def start_http(self, port: int = 0) -> int:
        """Start the localhost HTTP shim; returns the bound port."""
        daemon = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *args):  # quiet by default
                pass

            def _reply(self, status: int, payload) -> None:
                body = json.dumps(payload, sort_keys=True).encode()
                self._raw_reply(status, body, "application/json")

            def _raw_reply(self, status: int, body: bytes,
                           content_type: str) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                parsed = urlparse(self.path)
                if parsed.path == "/v1/ping":
                    self._reply(200, daemon.handle_request(
                        protocol.Request(op="ping")))
                elif parsed.path == "/v1/stats":
                    self._reply(200, daemon.handle_request(
                        protocol.Request(op="stats")))
                elif parsed.path == "/v1/metrics":
                    self._raw_reply(
                        200, daemon.metrics_text().encode("utf-8"),
                        "text/plain; version=0.0.4; charset=utf-8")
                elif parsed.path == "/v1/requests":
                    limit = None
                    raw = parse_qs(parsed.query).get("limit")
                    if raw:
                        try:
                            limit = max(0, int(raw[0]))
                        except ValueError:
                            limit = None
                    self._reply(200, daemon.journal.snapshot(limit))
                elif parsed.path == "/v1/traces":
                    self._reply(*daemon.traces_payload(
                        parse_qs(parsed.query)))
                else:
                    self._reply(404, {"ok": False, "error": {
                        "kind": "http", "message": "unknown path"}})

            def do_POST(self):
                if self.path != "/v1/query":
                    self._reply(404, {"ok": False, "error": {
                        "kind": "http", "message": "unknown path"}})
                    return
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length).decode("utf-8", "replace")
                try:
                    parsed = protocol.parse_line(body)
                except protocol.ProtocolError as err:
                    self._reply(400, protocol.error_response(
                        None, "protocol", str(err)))
                    return
                if isinstance(parsed, list):
                    self._reply(200, [daemon.handle_request(r)
                                      for r in parsed])
                else:
                    self._reply(200, daemon.handle_request(parsed))

        self._http_server = ThreadingHTTPServer(("127.0.0.1", port), Handler)
        self._http_thread = threading.Thread(
            target=self._http_server.serve_forever, daemon=True,
            name="repro-serve-http")
        self._http_thread.start()
        return self._http_server.server_address[1]

    def stop_http(self) -> None:
        if self._http_server is not None:
            self._http_server.shutdown()
            self._http_server.server_close()
            self._http_server = None
            self._http_thread = None

    # -- graceful drain -------------------------------------------------

    def begin_drain(self) -> None:
        """Flip to draining: new analysis work is rejected (typed
        ``unavailable``), in-flight requests run to completion, and the
        stdio loop / CLI wait wake up to finish the shutdown."""
        with self._inflight_cond:
            self.draining = True
        self.shutdown_event.set()

    def drain(self, timeout: float = DRAIN_TIMEOUT) -> bool:
        """Finish in-flight work, flush the fact store, stop HTTP.

        HTTP handler threads are daemonic, so ``stop_http`` alone would
        abandon mid-request work — the in-flight condition variable is
        what guarantees every accepted request produces its answer
        before the process exits.  Returns False only if in-flight work
        outlived *timeout* (the store is flushed and HTTP stopped
        regardless).
        """
        self.begin_drain()
        expires = time.monotonic() + timeout
        with self._inflight_cond:
            while self._inflight > 0:
                remaining = expires - time.monotonic()
                if remaining <= 0:
                    break
                self._inflight_cond.wait(remaining)
            drained = self._inflight == 0
        if self.manager.store is not None:
            self.manager.store.flush()
        self.stop_http()
        return drained
