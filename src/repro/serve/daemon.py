"""The long-running analysis daemon: JSONL-on-stdio + localhost HTTP.

Both transports speak the same :mod:`repro.serve.protocol` payloads and
dispatch into one :class:`Daemon`:

* **stdio** — each input line is one request object or batch array;
  each produces exactly one output line.  EOF or a ``shutdown`` op ends
  the loop.  This is the transport scripts and editors drive.
* **HTTP** — a :class:`ThreadingHTTPServer` bound to ``127.0.0.1``
  (never a public interface) accepting ``POST /v1/query`` with the same
  JSON payloads, plus ``GET /v1/ping`` and ``GET /v1/stats``.  The port
  is OS-assigned by default and printed/returned so clients can find it.

Observability: every request runs under a ``serve.request.<op>`` span,
bumps ``serve.request.total`` (and ``.errors`` on failure), and lands
its wall time in the ``serve.request.ms`` latency histogram labelled by
op.  ``stats`` exposes the same numbers over the wire.

Failures are answers, not crashes: protocol errors, compile errors and
analysis errors each map to a typed error response and the daemon keeps
serving.  Only :class:`~repro.serve.session.DifferentialMismatch` is
allowed to propagate in tests — over the wire it too becomes an error
response (kind ``differential``), because a disagreeing daemon should
say so loudly rather than die silently.
"""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro import CompileError, __version__
from repro.lang.errors import ResourceLimitError
from repro.obs import core as obs
from repro.obs import metrics
from repro.qa import chaos, guards
from repro.serve import protocol
from repro.serve.session import DifferentialMismatch, SessionManager

#: Latency histogram buckets in milliseconds: warm hits are sub-ms,
#: cold compiles tens-to-hundreds of ms.
LATENCY_BUCKETS_MS = (0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
                      250.0, 1000.0, 5000.0)

#: How long a graceful drain waits for in-flight requests, seconds.
DRAIN_TIMEOUT = 30.0


class Daemon:
    """Transport-independent request dispatcher over one session manager."""

    def __init__(self, manager: SessionManager,
                 deadline_seconds: Optional[float] = None):
        self.manager = manager
        #: Per-request wall-clock budget; ``None`` serves unbounded.
        self.deadline_seconds = deadline_seconds
        self.shutdown_event = threading.Event()
        #: Draining daemons answer ping/stats/shutdown but reject new
        #: analysis work with a typed ``unavailable`` error.
        self.draining = False
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self._http_server: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None

    # -- dispatch -------------------------------------------------------

    def handle_request(self, request: protocol.Request) -> dict:
        """One request in, one response dict out; never raises."""
        registry = metrics.registry()
        registry.counter("serve.request.total", op=request.op).inc()
        with self._inflight_cond:
            if self.draining and request.op in protocol.SOURCE_OPS:
                registry.counter("serve.request.rejected").inc()
                return protocol.error_response(
                    request.id, "unavailable",
                    "daemon is draining and accepts no new analysis work")
            self._inflight += 1
        start = time.perf_counter()
        request_deadline: Optional[guards.Deadline] = None
        try:
            try:
                with guards.guarded(
                        self.deadline_seconds,
                        "serve request {}".format(request.op)
                ) as request_deadline:
                    if request_deadline is not None:
                        registry.counter("serve.deadline.installed").inc()
                    chaos.fire("daemon.handler", op=request.op)
                    with obs.span("serve.request." + request.op,
                                  unit=request.name or "?"):
                        result = self._dispatch(request)
                response = protocol.ok_response(request.id, result)
            except protocol.ProtocolError as err:
                response = self._error(request, "protocol", err)
            except DifferentialMismatch as err:
                response = self._error(request, "differential", err)
            except CompileError as err:
                response = self._error(request, "compile", err)
            except ResourceLimitError as err:
                # The per-request deadline and the analysis resource
                # guards raise the same type; the deadline's own expiry
                # disambiguates which budget ran out.
                if request_deadline is not None and request_deadline.expired():
                    registry.counter("serve.deadline.expired").inc()
                    response = self._error(request, "deadline_exceeded", err)
                else:
                    response = self._error(request, "resource_limit", err)
            except Exception as err:  # noqa: BLE001 - daemon must not die
                response = self._error(request, "internal", err)
        finally:
            with self._inflight_cond:
                self._inflight -= 1
                self._inflight_cond.notify_all()
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        registry.histogram("serve.request.ms", buckets=LATENCY_BUCKETS_MS,
                           op=request.op).observe(elapsed_ms)
        return response

    def _error(self, request: protocol.Request, kind: str,
               err: Exception) -> dict:
        metrics.registry().counter("serve.request.errors", op=request.op).inc()
        return protocol.error_response(request.id, kind, str(err))

    def _dispatch(self, request: protocol.Request) -> dict:
        op = request.op
        if op == "ping":
            return {"pong": True, "version": __version__,
                    "protocol": protocol.PROTOCOL_VERSION,
                    "degraded": self.manager.degraded,
                    "draining": self.draining}
        if op == "stats":
            stats = self.manager.stats()
            stats["draining"] = self.draining
            return stats
        if op == "shutdown":
            self.shutdown_event.set()
            return {"stopping": True}
        # Source-bearing ops from here on (protocol validated presence).
        session = self.manager.lookup(request.source, name=request.name)
        if op == "alias":
            analysis = request.analysis or "SMFieldTypeRefs"
            counts = self.manager.alias_counts(
                session, analysis, request.open_world)
            return {
                "module": session.name,
                "module_hash": session.module_hash,
                "analysis": analysis,
                "open_world": request.open_world,
                "references": counts[0],
                "local_pairs": counts[1],
                "global_pairs": counts[2],
            }
        if op == "tables":
            if request.worlds == "both":
                world_list = [False, True]
            elif request.worlds is not None:
                world_list = [request.worlds == "open"]
            else:
                world_list = [request.open_world]
            rows = []
            for open_world in world_list:
                rows.extend(self.manager.tables(session, open_world))
            return {
                "module": session.name,
                "module_hash": session.module_hash,
                "open_world": world_list[0] if len(world_list) == 1
                else request.open_world,
                "worlds": request.worlds or
                ("open" if world_list == [True] else "closed"),
                "rows": rows,
            }
        if op == "limit":
            result = self.manager.limit(session, request.analysis)
            result["module"] = session.name
            return result
        if op == "facts":
            summary = self.manager.facts_summary(
                session, request.open_world)
            summary["module"] = session.name
            summary["module_hash"] = session.module_hash
            summary["procedures"] = len(session.bundle.proc_hashes)
            return summary
        raise protocol.ProtocolError("unhandled op {!r}".format(op))

    # -- stdio transport ------------------------------------------------

    def handle_line(self, line: str) -> str:
        """One JSONL input line to one JSONL output line."""
        try:
            parsed = protocol.parse_line(line)
        except protocol.ProtocolError as err:
            metrics.registry().counter("serve.request.errors", op="?").inc()
            return protocol.encode_line(
                protocol.error_response(None, "protocol", str(err)))
        if isinstance(parsed, list):
            return protocol.encode_line(
                [self.handle_request(req) for req in parsed])
        return protocol.encode_line(self.handle_request(parsed))

    def serve_stdio(self, stdin, stdout) -> int:
        """Blocking loop: read lines until EOF or a ``shutdown`` op."""
        for line in stdin:
            if not line.strip():
                continue
            stdout.write(self.handle_line(line))
            stdout.flush()
            if self.shutdown_event.is_set():
                break
        # EOF or shutdown op: same graceful exit as a signal drain —
        # finish anything on the HTTP side, flush the fact store.
        self.drain()
        return 0

    # -- HTTP transport -------------------------------------------------

    def start_http(self, port: int = 0) -> int:
        """Start the localhost HTTP shim; returns the bound port."""
        daemon = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *args):  # quiet by default
                pass

            def _reply(self, status: int, payload) -> None:
                body = json.dumps(payload, sort_keys=True).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                if self.path == "/v1/ping":
                    self._reply(200, daemon.handle_request(
                        protocol.Request(op="ping")))
                elif self.path == "/v1/stats":
                    self._reply(200, daemon.handle_request(
                        protocol.Request(op="stats")))
                else:
                    self._reply(404, {"ok": False, "error": {
                        "kind": "http", "message": "unknown path"}})

            def do_POST(self):
                if self.path != "/v1/query":
                    self._reply(404, {"ok": False, "error": {
                        "kind": "http", "message": "unknown path"}})
                    return
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length).decode("utf-8", "replace")
                try:
                    parsed = protocol.parse_line(body)
                except protocol.ProtocolError as err:
                    self._reply(400, protocol.error_response(
                        None, "protocol", str(err)))
                    return
                if isinstance(parsed, list):
                    self._reply(200, [daemon.handle_request(r)
                                      for r in parsed])
                else:
                    self._reply(200, daemon.handle_request(parsed))

        self._http_server = ThreadingHTTPServer(("127.0.0.1", port), Handler)
        self._http_thread = threading.Thread(
            target=self._http_server.serve_forever, daemon=True,
            name="repro-serve-http")
        self._http_thread.start()
        return self._http_server.server_address[1]

    def stop_http(self) -> None:
        if self._http_server is not None:
            self._http_server.shutdown()
            self._http_server.server_close()
            self._http_server = None
            self._http_thread = None

    # -- graceful drain -------------------------------------------------

    def begin_drain(self) -> None:
        """Flip to draining: new analysis work is rejected (typed
        ``unavailable``), in-flight requests run to completion, and the
        stdio loop / CLI wait wake up to finish the shutdown."""
        with self._inflight_cond:
            self.draining = True
        self.shutdown_event.set()

    def drain(self, timeout: float = DRAIN_TIMEOUT) -> bool:
        """Finish in-flight work, flush the fact store, stop HTTP.

        HTTP handler threads are daemonic, so ``stop_http`` alone would
        abandon mid-request work — the in-flight condition variable is
        what guarantees every accepted request produces its answer
        before the process exits.  Returns False only if in-flight work
        outlived *timeout* (the store is flushed and HTTP stopped
        regardless).
        """
        self.begin_drain()
        expires = time.monotonic() + timeout
        with self._inflight_cond:
            while self._inflight > 0:
                remaining = expires - time.monotonic()
                if remaining <= 0:
                    break
                self._inflight_cond.wait(remaining)
            drained = self._inflight == 0
        if self.manager.store is not None:
            self.manager.store.flush()
        self.stop_http()
        return drained
