"""Eviction-aware fact-store warm-up from a corpus manifest.

``repro serve warmup --corpus DIR`` pre-populates a daemon's
:class:`~repro.serve.factcache.FactStore` so the first real traffic hits
warm partitions instead of cold compiles.  Two decisions make it
*eviction-aware* rather than a dumb sweep:

* **Largest-first order.**  Big modules are the expensive compiles and
  the first LRU-eviction victims of an undersized cap; warming them
  first means the cap is spent where a cold miss hurts most (ties break
  by name so the order — and therefore the resulting store — is
  deterministic).
* **Stop at the size cap.**  Once the store's byte budget is reached,
  every further ``store`` would evict a partition this same run just
  paid to build — churn with zero net warmth.  The sweep stops instead
  and reports how many programs it skipped.

Returns a JSON-able summary (programs seen / warmed / skipped, final
store bytes and partition count) that the CLI prints.
"""

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis import ANALYSIS_NAMES
from repro.obs import core as obs
from repro.obs import metrics
from repro.qa.corpus import iter_shards, load_shard
from repro.serve.factcache import FactStore
from repro.serve.session import SessionManager

__all__ = ["warmup_from_corpus"]


def warmup_from_corpus(
    corpus_dir: Path,
    store: FactStore,
    analyses: Optional[Sequence[str]] = None,
    worlds: Sequence[bool] = (False, True),
    max_programs: Optional[int] = None,
) -> dict:
    """Warm *store* with every served configuration of a corpus."""
    corpus_dir = Path(corpus_dir)
    analyses = tuple(analyses) if analyses else tuple(ANALYSIS_NAMES)
    entries: List[Tuple[str, str]] = []
    for info in iter_shards(corpus_dir):
        for entry in load_shard(corpus_dir, info, verify=True):
            entries.append((entry["source"], entry["name"]))
    entries.sort(key=lambda e: (-len(e[0]), e[1]))
    if max_programs is not None:
        entries = entries[:max_programs]

    # Sessions only exist to drive fact building; a tiny LRU keeps the
    # warm-up's memory flat while the store accumulates partitions.
    manager = SessionManager(store=store, max_sessions=4)
    warmed = 0
    skipped = 0
    capped = False
    # The store keeps itself under its byte budget by LRU-evicting on
    # every write, so `total_bytes() >= max_bytes` alone never fires;
    # the real cap signal is the first eviction — from then on every
    # further warm write would evict a partition this run just built.
    evict_counter = metrics.registry().counter("serve.factcache.evict")
    evictions_before = evict_counter.value
    with obs.span("serve.warmup", programs=len(entries)):
        for i, (source, name) in enumerate(entries):
            if (store.max_bytes is not None
                    and store.total_bytes() >= store.max_bytes):
                capped = True
                skipped = len(entries) - i
                break
            session = manager.lookup(source, name=name)
            for analysis in analyses:
                for open_world in worlds:
                    manager.alias_counts(session, analysis, open_world)
            warmed += 1
            metrics.registry().counter("serve.warmup.programs").inc()
            if evict_counter.value > evictions_before:
                capped = True
                skipped = len(entries) - (i + 1)
                break
    return {
        "corpus_dir": str(corpus_dir),
        "programs": len(entries),
        "warmed": warmed,
        "skipped": skipped,
        "stopped_at_cap": capped,
        "configs_per_program": len(analyses) * len(worlds),
        "store_partitions": len(store),
        "store_bytes": store.total_bytes(),
        "store_max_bytes": store.max_bytes,
        "degraded": manager.degraded,
    }
