"""Analysis-as-a-service: the ``repro serve`` daemon (DESIGN.md §6h).

Every CLI invocation pays the full cold pipeline — parse, typecheck,
lower, fact collection, analysis build — before answering a single
query, which dominates repeated workloads.  This package keeps analyses
warm instead:

* :mod:`repro.serve.protocol` — the versioned JSONL request/response
  protocol (batched ``alias`` / ``tables`` / ``limit`` / ``facts``
  queries) shared by both transports;
* :mod:`repro.serve.factcache` — the versioned on-disk fact store:
  content-hashed per-module partitions holding subtype bitmasks, the
  TypeRefsTable, AddressTaken, Steensgaard classes and the picklable
  bulk alias matrices, with LRU eviction under a size cap;
* :mod:`repro.serve.session` — the warm session manager: in-memory LRU
  of module sessions over the fact store, content-hash invalidation
  with per-procedure change accounting, and an optional differential
  mode that pins every served answer to the cold engines;
* :mod:`repro.serve.daemon` — the long-running daemon: JSONL over
  stdio and a localhost HTTP shim, with per-request spans, counters and
  latency histograms in :mod:`repro.obs`;
* :mod:`repro.serve.client` — clients for both transports plus the
  ``make serve-smoke`` battery;
* :mod:`repro.serve.bench` — ``repro bench serve``: warm-vs-cold
  throughput, recorded to the benchmark ledger and gated.
"""

from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    error_response,
    ok_response,
)
from repro.serve.factcache import FactStore
from repro.serve.session import SessionManager

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "error_response",
    "ok_response",
    "FactStore",
    "SessionManager",
]
