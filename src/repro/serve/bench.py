"""Warm-vs-cold serving throughput: the ``repro bench serve`` numbers.

The daemon exists to beat the single-shot CLI on repeated workloads, so
this module measures exactly that contrast over the bench-suite
programs:

* **cold** — what ``repro alias FILE`` pays per invocation: a full
  compile (parse, typecheck, lower) plus Table 5 counts for all three
  analyses with the default fast engine, from scratch, every query;
* **warm** — the same ``tables`` query answered by a primed
  :class:`~repro.serve.daemon.Daemon` (every count a fact-bundle hit).

Both loops run the *same* query stream, and the warm answers are pinned
against the cold ones in-process before any number is reported — a
daemon that is fast but wrong fails here, not in production.

The measured loops run under ``serve.cold`` / ``serve.warm`` spans so
:func:`repro.obs.history.phase_seconds` lands them in the benchmark
ledger, where ``repro bench gate`` regresses them like any other phase;
:func:`serve_phases` exposes the same numbers as explicit extra phases
for the quick-bench record.  :func:`check_speedup` is the acceptance
gate: warm throughput must clear ``min_speedup`` × cold throughput.
"""

import time
from typing import Dict, List, Optional

from repro import compile_program
from repro.analysis import ANALYSIS_NAMES, AliasPairCounter
from repro.bench import registry
from repro.obs import core as obs
from repro.obs import history, metrics

#: The acceptance threshold: warm served queries must be at least this
#: many times faster than cold single-shot CLI queries.
DEFAULT_MIN_SPEEDUP = 5.0


class ServeBenchError(AssertionError):
    """A serve-bench invariant failed (disagreement or missed speedup)."""


def _cold_tables(source: str, name: str) -> List[tuple]:
    """One cold single-shot query: full compile + all-analysis counts."""
    program = compile_program(source, unit=name)
    base = program.base()
    return [
        AliasPairCounter(
            base.program, program.analysis(analysis), engine="fast"
        ).count().counts()
        for analysis in ANALYSIS_NAMES
    ]


def run_serve_bench(names: Optional[List[str]] = None,
                    repeats: int = 3) -> Dict[str, object]:
    """Measure warm vs cold throughput over the bench suite.

    One *query* is one closed-world ``tables`` answer for one benchmark
    (all three analyses).  Cold runs ``repeats`` single-shot rounds;
    warm primes the daemon once (untimed — that cost is the cold path,
    already measured) and then answers the same ``repeats`` rounds from
    the fact bundles.
    """
    from repro.serve.daemon import Daemon
    from repro.serve.session import SessionManager

    names = list(names or registry.benchmark_names())
    sources = {name: registry.load_source(name) for name in names}
    queries = repeats * len(names)

    cold_answers: Dict[str, List[tuple]] = {}
    with obs.span("serve.cold", queries=queries):
        cold_start = time.perf_counter()
        for _ in range(repeats):
            for name in names:
                cold_answers[name] = _cold_tables(sources[name], name)
        cold_s = time.perf_counter() - cold_start

    daemon = Daemon(SessionManager(store=None))
    warm_answers: Dict[str, List[tuple]] = {}

    def ask(name: str) -> List[tuple]:
        response = daemon.handle_request(
            _tables_request(sources[name], name))
        if not response.get("ok"):
            raise ServeBenchError(
                "serve bench query failed for {}: {}".format(name, response))
        return [
            (row["references"], row["local_pairs"], row["global_pairs"])
            for row in response["result"]["rows"]
        ]

    for name in names:  # prime: fills each module's fact bundle
        warm_answers[name] = ask(name)
    with obs.span("serve.warm", queries=queries):
        warm_start = time.perf_counter()
        for _ in range(repeats):
            for name in names:
                warm_answers[name] = ask(name)
        warm_s = time.perf_counter() - warm_start

    for name in names:  # correctness before speed
        if warm_answers[name] != cold_answers[name]:
            raise ServeBenchError(
                "warm answers for {} disagree with cold CLI path: "
                "{} != {}".format(name, warm_answers[name],
                                  cold_answers[name]))

    cold_qps = queries / max(cold_s, 1e-9)
    warm_qps = queries / max(warm_s, 1e-9)
    result = {
        "benchmarks": names,
        "repeats": repeats,
        "queries": queries,
        "cold_ms": round(cold_s * 1000, 3),
        "warm_ms": round(warm_s * 1000, 3),
        "cold_qps": round(cold_qps, 1),
        "warm_qps": round(warm_qps, 1),
        "speedup": round(warm_qps / max(cold_qps, 1e-9), 2),
    }
    gauge = metrics.registry().gauge
    gauge("serve.bench.speedup").set(result["speedup"])
    gauge("serve.bench.warm_qps").set(result["warm_qps"])
    return result


def _tables_request(source: str, name: str):
    from repro.serve.protocol import Request

    return Request(op="tables", id=name, source=source, name=name)


def serve_phases(result: Dict[str, object]) -> Dict[str, Dict[str, float]]:
    """The serve numbers as ledger phase series (seconds)."""
    return {
        history.SUITE_BUCKET: {
            "serve.cold": round(result["cold_ms"] / 1000.0, 6),
            "serve.warm": round(result["warm_ms"] / 1000.0, 6),
        }
    }


def check_speedup(result: Dict[str, object],
                  min_speedup: float = DEFAULT_MIN_SPEEDUP) -> None:
    """Raise unless warm throughput clears the acceptance threshold."""
    if result["speedup"] < min_speedup:
        raise ServeBenchError(
            "warm serving is only {:.2f}x cold single-shot throughput "
            "(threshold {:.1f}x)".format(result["speedup"], min_speedup))
