"""Warm analysis sessions over the fact cache.

The :class:`SessionManager` is what makes ``repro serve`` fast: it keeps
one :class:`ModuleSession` per *content hash* of served source, so

* a repeated query never recompiles — answers come straight from the
  session's :class:`~repro.analysis.facts.FactBundle` (Table 5 counts
  and bulk matrices are part of the bundle, so a warm ``alias`` query is
  a dictionary lookup);
* a **miss** first consults the on-disk :class:`~repro.serve.factcache.
  FactStore` — a daemon restart, or a corpus of modules larger than the
  in-memory session cap, still answers without compiling;
* an **edit** re-keys only its own module: the new hash misses, the old
  partition stays valid for anyone still serving the old text, and the
  manager diffs per-procedure IR hashes (taken at lower time) to report
  invalidation at procedure granularity
  (``serve.invalidate.procs_changed`` / ``.procs_reused``).

Counters tests assert on (shared series, :mod:`repro.obs.metrics`):

``serve.session.hit`` / ``.miss`` / ``.evict`` — in-memory session LRU;
``serve.session.compile`` — full cold compiles performed;
``serve.facts.rebuild`` — fact partitions (re)built from source, the
satellite-test signal that *only the edited module's* facts rebuild;
``serve.facts.config_hit`` / ``.config_build`` — per-(analysis, world)
answers served from the bundle vs computed;
``serve.invalidate.modules`` / ``.procs_changed`` / ``.procs_reused`` —
edit accounting for named units;
``serve.differential.checks`` — differential-mode agreements.
"""

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro import compile_program
from repro.analysis import ANALYSIS_NAMES
from repro.analysis.alias_pairs import AliasPairCounter
from repro.analysis.bulk import build_matrix
from repro.analysis.facts import (
    ConfigFacts,
    FactBundle,
    collect_world_facts,
    diff_proc_hashes,
    new_bundle,
    proc_ir_hashes,
    source_hash,
)
from repro.obs import core as obs
from repro.obs import metrics
from repro.qa import chaos
from repro.serve.factcache import FactStore

#: Default cap on warm in-memory sessions (each holds a compiled
#: program plus its bundle; the fact store backstops evictions).
DEFAULT_MAX_SESSIONS = 64

#: Analyses served by ``tables`` (the paper's three levels).
SERVED_ANALYSES = ANALYSIS_NAMES


def _counter(name: str):
    return metrics.registry().counter("serve." + name)


class DifferentialMismatch(AssertionError):
    """A served answer disagreed with a cold engine (differential mode)."""


class ModuleSession:
    """One warm module: compiled artifacts plus its fact partition."""

    def __init__(self, bundle: FactBundle, source: str,
                 program=None, base=None):
        self.bundle = bundle
        self.source = source
        self._program = program           # repro.Program, lazily compiled
        self._base = base                 # PipelineResult of program.base()
        self._contexts: Dict[bool, object] = {}

    @property
    def module_hash(self) -> str:
        return self.bundle.module_hash

    @property
    def name(self) -> str:
        return self.bundle.module_name

    def ensure_program(self):
        """The compiled :class:`repro.Program`, compiling on first need.

        A session restored purely from the fact store has no program
        until a query actually requires one (a new configuration, a
        ``limit`` study, or a differential check).
        """
        if self._program is None:
            with obs.span("serve.session.compile", module=self.name):
                chaos.fire("session.compile", module=self.name)
                _counter("session.compile").inc()
                self._program = compile_program(self.source, unit=self.name)
                self._base = self._program.base()
        return self._program

    def base_program(self):
        self.ensure_program()
        return self._base.program

    def context(self, open_world: bool):
        program = self.ensure_program()
        if open_world not in self._contexts:
            self._contexts[open_world] = program.pipeline.context(open_world)
        return self._contexts[open_world]


class SessionManager:
    """Content-hashed session LRU + fact store + differential pinning."""

    def __init__(self, store: Optional[FactStore] = None,
                 max_sessions: int = DEFAULT_MAX_SESSIONS,
                 differential: bool = False):
        self.store = store
        self.max_sessions = max_sessions
        self.differential = differential
        #: True while the fact store is failing I/O: answers keep coming
        #: from cold compute, persistence is skipped, and the flag (plus
        #: the ``serve.degraded`` gauge) clears on the next store success.
        self.degraded = False
        self._lock = threading.RLock()
        self._sessions: "OrderedDict[str, ModuleSession]" = OrderedDict()
        # Last hash + procedure hashes served under each unit name, for
        # edit accounting even after the old session is evicted.
        self._last_by_name: Dict[str, Tuple[str, Dict[str, str]]] = {}

    # -- session lookup -------------------------------------------------

    def lookup(self, source: str, name: Optional[str] = None) -> ModuleSession:
        """The warm session for *source*, building/restoring on miss."""
        key = source_hash(source)
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                _counter("session.hit").inc()
                obs.trace_note("cache", "hit")
                self._sessions.move_to_end(key)
                return session
            _counter("session.miss").inc()
            session = self._restore(key, source)
            if session is not None:
                obs.trace_note("cache", "restore")
            else:
                session = self._build(key, source)
                obs.trace_note("cache", "build")
            self._account_invalidation(session, name)
            self._sessions[key] = session
            while len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
                _counter("session.evict").inc()
            metrics.registry().gauge("serve.session.warm").set(
                len(self._sessions))
            return session

    def _set_degraded(self, degraded: bool) -> None:
        self.degraded = degraded
        metrics.registry().gauge("serve.degraded").set(int(degraded))

    def _restore(self, key: str, source: str) -> Optional[ModuleSession]:
        if self.store is None:
            return None
        try:
            bundle = self.store.load(key)
        except OSError:
            # Fact store unavailable: serve cold instead of failing the
            # request.  A load miss is indistinguishable from this for
            # correctness — only latency and the degraded flag differ.
            _counter("factcache.io_error").inc()
            self._set_degraded(True)
            return None
        if bundle is None:
            return None
        return ModuleSession(bundle, source)

    def _build(self, key: str, source: str) -> ModuleSession:
        with obs.span("serve.facts.rebuild", key=key[:12]):
            _counter("facts.rebuild").inc()
            chaos.fire("session.compile", module=key[:12])
            program = compile_program(source, unit="<serve>")
            _counter("session.compile").inc()
            base = program.base()
            bundle = new_bundle(
                program.name, key, proc_ir_hashes(base.program))
        session = ModuleSession(bundle, source, program=program, base=base)
        self._persist(bundle)
        return session

    def _account_invalidation(self, session: ModuleSession,
                              name: Optional[str]) -> None:
        """Procedure-granular edit accounting for a named unit."""
        unit = name or session.name
        previous = self._last_by_name.get(unit)
        if previous is not None and previous[0] != session.module_hash:
            changed, unchanged = diff_proc_hashes(
                previous[1], session.bundle.proc_hashes)
            _counter("invalidate.modules").inc()
            _counter("invalidate.procs_changed").inc(len(changed))
            _counter("invalidate.procs_reused").inc(len(unchanged))
        self._last_by_name[unit] = (
            session.module_hash, dict(session.bundle.proc_hashes))

    def _persist(self, bundle: FactBundle) -> None:
        if self.store is None:
            return
        try:
            self.store.store(bundle)
        except OSError:
            # The answer is already computed; losing persistence only
            # costs a future recompute.  Flag degraded and keep serving.
            _counter("factcache.io_error").inc()
            self._set_degraded(True)
        else:
            if self.degraded:
                self._set_degraded(False)

    # -- served answers -------------------------------------------------

    def alias_counts(self, session: ModuleSession, analysis: str,
                     open_world: bool) -> Tuple[int, int, int]:
        """``(references, local_pairs, global_pairs)`` for one config.

        Warm path: straight out of the bundle.  Cold path: build the
        analysis + bulk matrix once, fold it into the bundle, persist.
        """
        facts = session.bundle.config(analysis, open_world)
        if facts is not None:
            _counter("facts.config_hit").inc()
        else:
            with obs.span("serve.facts.config_build", analysis=analysis,
                          open_world=open_world, module=session.name):
                _counter("facts.config_build").inc()
                program = session.ensure_program()
                alias = program.analysis(analysis, open_world=open_world)
                matrix = build_matrix(session.base_program(), alias)
                counts = matrix.count_pairs()
                facts = ConfigFacts(
                    analysis=analysis,
                    open_world=open_world,
                    matrix=matrix,
                    references=counts.references,
                    local_pairs=counts.local_pairs,
                    global_pairs=counts.global_pairs,
                )
            session.bundle.add_config(facts)
            self._persist(session.bundle)
        if self.differential:
            self._differential_check(session, analysis, open_world,
                                     facts.counts())
        return facts.counts()

    def tables(self, session: ModuleSession,
               open_world: bool) -> List[dict]:
        """Table 5 rows for all served analyses under one world."""
        return [
            {
                "analysis": name,
                "open_world": open_world,
                "references": counts[0],
                "local_pairs": counts[1],
                "global_pairs": counts[2],
            }
            for name in SERVED_ANALYSES
            for counts in [self.alias_counts(session, name, open_world)]
        ]

    def facts_summary(self, session: ModuleSession,
                      open_world: bool) -> dict:
        """Flattened world facts (built once per world, then cached)."""
        world = session.bundle.worlds.get(open_world)
        if world is None:
            with obs.span("serve.facts.world_build", module=session.name,
                          open_world=open_world):
                world = collect_world_facts(session.context(open_world))
            session.bundle.worlds[open_world] = world
            self._persist(session.bundle)
        else:
            _counter("facts.config_hit").inc()
        return world.summary()

    def limit(self, session: ModuleSession,
              analysis: Optional[str]) -> dict:
        """Figure 9's limit study (always computed; it runs the program)."""
        program = session.ensure_program()
        before = program.limit_study(program.base())
        optimized = program.pipeline.build(
            analysis=analysis or "SMFieldTypeRefs")
        after = program.limit_study(optimized)
        return {
            "heap_loads": before.total_heap_loads,
            "redundant_original": before.redundant_loads,
            "redundant_after_rle": after.redundant_loads,
        }

    # -- differential pinning -------------------------------------------

    def _differential_check(self, session: ModuleSession, analysis: str,
                            open_world: bool,
                            served: Tuple[int, int, int]) -> None:
        """Pin one served answer against the cold fast + reference engines."""
        program = session.ensure_program()
        alias = program.analysis(analysis, open_world=open_world)
        for engine in ("fast", "reference"):
            report = AliasPairCounter(
                session.base_program(), alias, engine=engine).count()
            if report.counts() != served:
                raise DifferentialMismatch(
                    "served {} ({}, open_world={}) = {} but {} engine = {}"
                    .format(session.name, analysis, open_world, served,
                            engine, report.counts()))
        _counter("differential.checks").inc()

    # -- introspection --------------------------------------------------

    def stats(self) -> dict:
        registry = metrics.registry()

        def val(name: str) -> int:
            return int(registry.counter(name).value)

        with self._lock:
            return {
                "sessions": len(self._sessions),
                "max_sessions": self.max_sessions,
                "differential": self.differential,
                "degraded": self.degraded,
                "store_partitions": len(self.store) if self.store else 0,
                "store_bytes": self.store.total_bytes() if self.store else 0,
                "counters": {
                    name: val(name)
                    for name in (
                        "serve.session.hit", "serve.session.miss",
                        "serve.session.evict", "serve.session.compile",
                        "serve.facts.rebuild", "serve.facts.config_hit",
                        "serve.facts.config_build",
                        "serve.invalidate.modules",
                        "serve.invalidate.procs_changed",
                        "serve.invalidate.procs_reused",
                        "serve.differential.checks",
                        "serve.factcache.hit", "serve.factcache.miss",
                        "serve.factcache.store", "serve.factcache.evict",
                        "serve.factcache.io_error",
                        "serve.deadline.expired",
                        "serve.request.rejected",
                    )
                },
            }
