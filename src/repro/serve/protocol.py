"""The serve wire protocol: versioned JSONL requests and responses.

One request is one JSON object; a **batch** is a JSON array of request
objects.  Over stdio each line of input is one request or batch and
produces exactly one line of output (an object for a request, an array
— in request order — for a batch).  The HTTP shim POSTs the same
payloads to ``/v1/query``.

Request fields:

* ``op`` (required) — one of :data:`OPS`;
* ``id`` — client-chosen correlation value, echoed verbatim;
* ``source`` — MiniM3 module text (ops that analyse a program);
* ``name`` — unit name for diagnostics (defaults to the module name);
* ``analysis`` — one analysis name (``alias``); ``tables`` covers all;
* ``open_world`` — bool, Section 4 variants (default closed world);
* ``worlds`` — ``tables`` only: ``"closed"``, ``"open"`` or ``"both"``;
  overrides ``open_world`` and ``"both"`` serves all six configurations
  in one response (closed rows first);
* ``engine`` — reserved for parity with the CLI; the daemon always
  answers from bulk matrices and (in differential mode) cross-checks
  against the cold fast/reference engines.
* ``trace_id`` — optional client-chosen trace id (a non-empty string);
  the daemon mints one when absent.  Every response echoes the id in a
  ``"trace"`` key — ok *and* error responses, so a fault injected
  mid-request is still attributable to its trace.
* ``traceparent`` — optional cross-process trace context in the
  :class:`repro.obs.sampler.TraceContext` header form
  (``{trace}-{proc}-{span:x}-{flag}``).  When present it supersedes
  ``trace_id``: the daemon adopts its trace id, honours its sampled
  flag instead of rolling the head-sampler coin, and parents the
  request's span tree under the named remote span, so a client batch
  and the daemon work it caused reconstruct as one tree
  (DESIGN.md §6k).
* ``debug`` — bool; when true the ok response additionally carries
  ``"spans"``: the request's own span tree (JSON span objects in start
  order), collected even while the global recorder is off.  This is
  what ``repro client --debug`` renders.

Responses are ``{"id":..., "ok": true, "result": {...}}`` or
``{"id":..., "ok": false, "error": {"kind":..., "message":...}}``;
every response also carries ``"v"``, the protocol version (and
``"trace"`` once the daemon has assigned a trace id).  Protocol errors
never kill the daemon — a malformed request yields an error response
and the stream continues (a malformed *line* yields one unkeyed error
object).
"""

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

#: Bumped whenever the wire format changes incompatibly.
PROTOCOL_VERSION = 1

#: Every operation the daemon understands.
OPS = ("ping", "alias", "tables", "limit", "facts", "stats", "shutdown")

#: Ops that require a ``source`` field.
SOURCE_OPS = ("alias", "tables", "limit", "facts")

#: Valid values of the ``worlds`` field (``tables``).
WORLDS = ("closed", "open", "both")


class ProtocolError(ValueError):
    """A malformed request (bad shape, unknown op, missing field)."""


@dataclass
class Request:
    """One validated request object."""

    op: str
    id: object = None
    source: Optional[str] = None
    name: Optional[str] = None
    analysis: Optional[str] = None
    open_world: bool = False
    worlds: Optional[str] = None
    engine: Optional[str] = None
    trace_id: Optional[str] = None
    traceparent: Optional[str] = None
    debug: bool = False
    extra: Dict[str, object] = field(default_factory=dict)

    def trace_context(self):
        """The parsed ``traceparent``, or None (validated on ingest)."""
        from repro.obs.sampler import TraceContext

        if self.traceparent is None:
            return None
        return TraceContext.parse(self.traceparent)

    @classmethod
    def from_obj(cls, obj: object) -> "Request":
        """Validate one decoded JSON object into a :class:`Request`."""
        if not isinstance(obj, dict):
            raise ProtocolError(
                "request must be a JSON object, got {}".format(
                    type(obj).__name__))
        op = obj.get("op")
        if op not in OPS:
            raise ProtocolError(
                "unknown op {!r}; expected one of {}".format(op, OPS))
        source = obj.get("source")
        if op in SOURCE_OPS and not isinstance(source, str):
            raise ProtocolError("op {!r} requires a string 'source'".format(op))
        if source is not None and not isinstance(source, str):
            raise ProtocolError("'source' must be a string")
        name = obj.get("name")
        if name is not None and not isinstance(name, str):
            raise ProtocolError("'name' must be a string")
        analysis = obj.get("analysis")
        if analysis is not None and not isinstance(analysis, str):
            raise ProtocolError("'analysis' must be a string")
        open_world = obj.get("open_world", False)
        if not isinstance(open_world, bool):
            raise ProtocolError("'open_world' must be a boolean")
        worlds = obj.get("worlds")
        if worlds is not None:
            if op != "tables":
                raise ProtocolError("'worlds' only applies to op 'tables'")
            if worlds not in WORLDS:
                raise ProtocolError(
                    "'worlds' must be one of {}".format(WORLDS))
        engine = obj.get("engine")
        if engine is not None and not isinstance(engine, str):
            raise ProtocolError("'engine' must be a string")
        trace_id = obj.get("trace_id")
        if trace_id is not None and (
                not isinstance(trace_id, str) or not trace_id):
            raise ProtocolError("'trace_id' must be a non-empty string")
        traceparent = obj.get("traceparent")
        if traceparent is not None:
            from repro.obs.sampler import TraceContext

            try:
                TraceContext.parse(traceparent)
            except ValueError as err:
                raise ProtocolError("bad 'traceparent': {}".format(err))
        debug = obj.get("debug", False)
        if not isinstance(debug, bool):
            raise ProtocolError("'debug' must be a boolean")
        known = {"op", "id", "source", "name", "analysis", "open_world",
                 "worlds", "engine", "trace_id", "traceparent", "debug"}
        return cls(
            op=op,
            id=obj.get("id"),
            source=source,
            name=name,
            analysis=analysis,
            open_world=open_world,
            worlds=worlds,
            engine=engine,
            trace_id=trace_id,
            traceparent=traceparent,
            debug=debug,
            extra={k: v for k, v in obj.items() if k not in known},
        )


def parse_line(line: str) -> Union[Request, List[Request]]:
    """Decode one JSONL input line into a request or a batch."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as err:
        raise ProtocolError("not JSON: {}".format(err))
    if isinstance(obj, list):
        if not obj:
            raise ProtocolError("empty batch")
        return [Request.from_obj(entry) for entry in obj]
    return Request.from_obj(obj)


def ok_response(request_id: object, result: dict,
                trace_id: Optional[str] = None) -> dict:
    response = {"v": PROTOCOL_VERSION, "id": request_id, "ok": True,
                "result": result}
    if trace_id is not None:
        response["trace"] = trace_id
    return response


def error_response(request_id: object, kind: str, message: str,
                   trace_id: Optional[str] = None) -> dict:
    response = {"v": PROTOCOL_VERSION, "id": request_id, "ok": False,
                "error": {"kind": kind, "message": message}}
    if trace_id is not None:
        response["trace"] = trace_id
    return response


def encode_line(response: Union[dict, List[dict]]) -> str:
    """One JSONL output line (object or batch array), newline included."""
    return json.dumps(response, sort_keys=True) + "\n"
