"""Clients for the serve daemon, plus the ``serve-smoke`` battery.

Two transports, one interface:

* :class:`StdioClient` spawns ``repro serve --stdio`` as a subprocess
  and exchanges JSONL lines over its pipes — what editors and scripts
  embed.
* :class:`HttpClient` POSTs the same payloads to a running daemon's
  ``/v1/query`` using only :mod:`urllib` (no external deps).

Both expose :meth:`query` (one request) and :meth:`batch` (a list, one
round trip).  :func:`run_smoke` is the ``make serve-smoke`` entry: it
boots a daemon with both transports and a differential session manager,
fires a batched query set over stdio *and* HTTP, asserts the transports
agree with each other and with the cold CLI path, and checks clean
shutdown — returning a JSON-able report the CLI prints.
"""

import json
import random
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from typing import Callable, List, Optional

from repro.obs import metrics
from repro.obs import sampler as tracing
from repro.qa import chaos
from repro.serve import protocol

#: How long (seconds) smoke waits on daemon subprocess I/O.
SMOKE_TIMEOUT = 120


def _inject_traceparent(payload):
    """Stamp the live trace context onto outgoing request objects.

    Any query sent from inside an active trace scope automatically
    carries a ``traceparent`` (unless the caller already set one), so
    the daemon's spans parent under whatever client span was open at
    send time — propagation is a property of *being traced*, not a
    per-call-site chore.  Returns *payload* (possibly mutated).
    """
    ctx = tracing.current_context()
    if ctx is None:
        return payload
    requests = payload if isinstance(payload, list) else [payload]
    for request in requests:
        if isinstance(request, dict) and "traceparent" not in request:
            request["traceparent"] = ctx.header()
    return payload

#: Default program for the smoke battery: small, but with a real type
#: hierarchy, fields, an array and a VAR formal, so all three analyses
#: and both worlds produce distinct, non-trivial counts.
SMOKE_SOURCE = """
MODULE ServeSmoke;

TYPE
  T = OBJECT f: T; n: INTEGER; END;
  S = T OBJECT g: T; END;
  Buf = REF ARRAY OF INTEGER;

VAR
  root: T;
  buf: Buf;

PROCEDURE Bump (VAR x: INTEGER) =
BEGIN
  x := x + 1;
END Bump;

PROCEDURE Link (a: T; b: S) =
BEGIN
  a.f := b;
  b.g := a.f;
  Bump (a.n);
END Link;

BEGIN
  root := NEW (S);
  buf := NEW (Buf, 4);
  buf^[0] := 1;
  Link (root, NEW (S));
END ServeSmoke.
"""


class ServeClientError(RuntimeError):
    """Transport-level failure talking to a daemon."""


class CircuitOpenError(ServeClientError):
    """The circuit breaker refused the call (daemon looks down)."""


class RetryPolicy:
    """Exponential backoff with seeded jitter.

    ``delay(attempt)`` is the sleep before retry *attempt* (0-based):
    ``base_delay * multiplier**attempt`` capped at ``max_delay``, scaled
    by a jitter factor in ``[0.5, 1.0]`` drawn from a seeded stream so
    chaos runs replay the exact same schedule.
    """

    def __init__(self, max_attempts: int = 5, base_delay: float = 0.05,
                 max_delay: float = 2.0, multiplier: float = 2.0,
                 seed: int = 0):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def delay(self, attempt: int) -> float:
        base = min(self.max_delay,
                   self.base_delay * self.multiplier ** attempt)
        with self._lock:
            return base * (0.5 + 0.5 * self._rng.random())


class CircuitBreaker:
    """Classic three-state breaker over daemon calls.

    *closed* passes everything; ``failure_threshold`` consecutive
    failures open it; while *open*, calls are refused without touching
    the network until ``reset_timeout`` has passed, after which one
    probe call is let through (*half-open*) — its success closes the
    breaker, its failure re-opens it for another full timeout.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout: float = 1.0):
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._probing:
                return "half-open"
            return "open"

    def allow(self) -> bool:
        with self._lock:
            if self._opened_at is None:
                return True
            if self._probing:
                return False  # one probe at a time
            if time.monotonic() - self._opened_at >= self.reset_timeout:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._probing or self._failures >= self.failure_threshold:
                self._opened_at = time.monotonic()
                self._probing = False


class StdioClient:
    """Drive a ``repro serve --stdio`` subprocess over JSONL pipes.

    *env* overrides the child's environment (e.g. the cross-process
    chaos battery exports ``REPRO_CHAOS_PLAN`` so the subprocess daemon
    arms the same fault plan this process planned).
    """

    def __init__(self, argv: Optional[List[str]] = None,
                 cache_dir: Optional[str] = None,
                 env: Optional[dict] = None):
        cmd = list(argv) if argv else [
            sys.executable, "-m", "repro.cli", "serve", "--stdio"]
        if cache_dir:
            cmd += ["--cache-dir", cache_dir]
        self._proc = subprocess.Popen(
            cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            text=True, env=env)

    def _roundtrip(self, payload) -> object:
        if self._proc.poll() is not None:
            raise ServeClientError("daemon exited early (rc={})".format(
                self._proc.returncode))
        payload = _inject_traceparent(payload)
        self._proc.stdin.write(json.dumps(payload) + "\n")
        self._proc.stdin.flush()
        line = self._proc.stdout.readline()
        if not line:
            raise ServeClientError("daemon closed the pipe")
        return json.loads(line)

    def query(self, request: dict) -> dict:
        return self._roundtrip(request)

    def batch(self, requests: List[dict]) -> List[dict]:
        return self._roundtrip(list(requests))

    def shutdown(self) -> int:
        """Request shutdown and reap the subprocess."""
        try:
            if self._proc.poll() is None:
                self._roundtrip({"op": "shutdown"})
        except (ServeClientError, BrokenPipeError, OSError):
            pass
        try:
            self._proc.stdin.close()
            return self._proc.wait(timeout=SMOKE_TIMEOUT)
        except subprocess.TimeoutExpired:
            self._proc.kill()
            return self._proc.wait()

    def __enter__(self) -> "StdioClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False


class HttpClient:
    """Talk to a daemon's localhost HTTP shim."""

    def __init__(self, port: int, host: str = "127.0.0.1"):
        self.base = "http://{}:{}".format(host, port)

    def _post(self, payload) -> object:
        data = json.dumps(_inject_traceparent(payload)).encode()
        req = urllib.request.Request(
            self.base + "/v1/query", data=data,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=SMOKE_TIMEOUT) as resp:
                return json.loads(resp.read().decode())
        except (urllib.error.URLError, OSError) as err:
            raise ServeClientError("HTTP query failed: {}".format(err))

    def query(self, request: dict) -> dict:
        return self._post(request)

    def batch(self, requests: List[dict]) -> List[dict]:
        return self._post(list(requests))

    def ping(self) -> dict:
        try:
            with urllib.request.urlopen(
                    self.base + "/v1/ping", timeout=SMOKE_TIMEOUT) as resp:
                return json.loads(resp.read().decode())
        except (urllib.error.URLError, OSError) as err:
            raise ServeClientError("HTTP ping failed: {}".format(err))

    def get(self, path: str) -> str:
        """Raw GET of a daemon endpoint (``/v1/metrics``, ...)."""
        try:
            with urllib.request.urlopen(
                    self.base + path, timeout=SMOKE_TIMEOUT) as resp:
                return resp.read().decode("utf-8")
        except (urllib.error.URLError, OSError) as err:
            raise ServeClientError("HTTP GET {} failed: {}".format(path, err))

    def metrics_text(self) -> str:
        """The live ``/v1/metrics`` Prometheus exposition body."""
        return self.get("/v1/metrics")

    def requests_snapshot(self, limit: Optional[int] = None) -> dict:
        """The ``/v1/requests`` journal snapshot."""
        path = "/v1/requests"
        if limit is not None:
            path += "?limit={}".format(int(limit))
        return json.loads(self.get(path))


class ResilientHttpClient:
    """Self-healing HTTP client: retries + backoff + circuit breaker.

    Every call goes through the same loop: the breaker gates it, a
    transport failure (or a chaos-injected ``client.drop``) records a
    failure, sleeps the policy's jittered backoff and retries.  A
    daemon killed mid-request therefore leaves the client *retrying*,
    and a restart on the same port heals it transparently — which is
    exactly what the ``client-drop`` chaos plan asserts.

    Counters: ``serve.client.retries`` per retried failure,
    ``serve.client.breaker_open`` per breaker refusal.
    """

    def __init__(self, port: int, host: str = "127.0.0.1",
                 policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None):
        self._client = HttpClient(port, host)
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()

    def _call(self, fn: Callable, *args) -> object:
        registry = metrics.registry()
        last: Optional[ServeClientError] = None
        for attempt in range(self.policy.max_attempts):
            if not self.breaker.allow():
                registry.counter("serve.client.breaker_open").inc()
                last = CircuitOpenError(
                    "circuit breaker is open (last error: {})".format(last))
            else:
                try:
                    if chaos.fire("client.drop", attempt=attempt) is not None:
                        raise ServeClientError(
                            "chaos: connection dropped before send")
                    result = fn(*args)
                except ServeClientError as err:
                    self.breaker.record_failure()
                    last = err
                else:
                    self.breaker.record_success()
                    return result
            if attempt + 1 < self.policy.max_attempts:
                registry.counter("serve.client.retries").inc()
                time.sleep(self.policy.delay(attempt))
        raise last if last is not None else ServeClientError("no attempts")

    def query(self, request: dict) -> dict:
        return self._call(self._client.query, request)

    def batch(self, requests: List[dict]) -> List[dict]:
        return self._call(self._client.batch, list(requests))

    def ping(self) -> dict:
        return self._call(self._client.ping)


# ----------------------------------------------------------------------
# The serve-smoke battery


def _smoke_requests(source: str) -> List[dict]:
    """The batched query set smoke fires over each transport."""
    requests: List[dict] = [{"op": "ping", "id": "ping"}]
    for open_world in (False, True):
        requests.append({
            "op": "tables", "id": "tables-ow{}".format(int(open_world)),
            "source": source, "name": "smoke",
            "open_world": open_world,
        })
    requests.append({
        "op": "tables", "id": "tables-both",
        "source": source, "name": "smoke", "worlds": "both",
    })
    requests.append(
        {"op": "facts", "id": "facts", "source": source, "name": "smoke"})
    return requests


def _assert_worlds_rows(responses: List[dict]) -> None:
    """The ``worlds: both`` rows must be exactly the closed rows
    followed by the open rows — all six configurations, pinned."""
    by_id = {resp.get("id"): resp for resp in responses}
    closed = by_id["tables-ow0"]["result"]["rows"]
    open_ = by_id["tables-ow1"]["result"]["rows"]
    both = by_id["tables-both"]["result"]["rows"]
    if both != closed + open_:
        raise AssertionError(
            "worlds=both rows disagree with per-world tables: {} vs {}"
            .format(both, closed + open_))


def _assert_ok(responses: List[dict], transport: str) -> None:
    for resp in responses:
        if not resp.get("ok"):
            raise AssertionError("smoke {} response failed: {}".format(
                transport, resp))


def _table_rows(responses: List[dict]) -> List[dict]:
    return [resp["result"] for resp in responses
            if resp.get("ok") and "rows" in resp.get("result", {})]


def run_smoke(source: str, cache_dir: str) -> dict:
    """Boot a daemon in-process, exercise both transports, verify.

    The in-process daemon runs with ``differential=True`` so every
    served count is already pinned against the cold fast + reference
    engines; smoke additionally pins the stdio subprocess transport
    against the in-process HTTP answers.
    """
    from pathlib import Path

    from repro.serve.daemon import Daemon
    from repro.serve.factcache import FactStore
    from repro.serve.session import SessionManager

    requests = _smoke_requests(source)

    # HTTP transport against an in-process daemon (differential mode).
    manager = SessionManager(
        store=FactStore(Path(cache_dir) / "http"), differential=True)
    daemon = Daemon(manager)
    port = daemon.start_http()
    try:
        http_client = HttpClient(port)
        ping = http_client.ping()
        http_responses = http_client.batch(requests)
        _assert_ok(http_responses, "http")
        _assert_worlds_rows(http_responses)
        # Second pass must be answered warm (no new fact rebuilds).
        http_warm = http_client.batch(requests)
        _assert_ok(http_warm, "http-warm")
    finally:
        daemon.stop_http()

    # Stdio transport against a real subprocess daemon.
    with StdioClient(cache_dir=str(Path(cache_dir) / "stdio")) as stdio:
        stdio_responses = stdio.batch(requests)
        _assert_ok(stdio_responses, "stdio")
        rc = stdio.shutdown()
    if rc != 0:
        raise AssertionError(
            "daemon did not shut down cleanly (rc={})".format(rc))

    # Transport agreement: identical Table 5 rows everywhere.
    http_rows = _table_rows(http_responses)
    if _table_rows(stdio_responses) != http_rows:
        raise AssertionError("stdio and HTTP transports disagree")
    if _table_rows(http_warm) != http_rows:
        raise AssertionError("warm answers drifted from cold answers")

    return {
        "ok": True,
        "ping": ping.get("result", {}),
        "queries_per_transport": len(requests),
        "table_rows": sum(len(r["rows"]) for r in http_rows),
        "differential_checks": manager.stats()["counters"][
            "serve.differential.checks"],
        "clean_shutdown": True,
    }


# ----------------------------------------------------------------------
# Debug span trees and the obs-smoke battery


def format_span_tree(spans: List[dict]) -> str:
    """Render a ``debug: true`` response's span list as an indented tree.

    Spans arrive as JSON objects in start order with ``depth`` already
    computed by the daemon's per-thread span stack, so rendering is a
    straight walk — used by ``repro client --debug``.
    """
    if not spans:
        return "(no spans collected)"
    lines: List[str] = []
    for span in spans:
        indent = "  " * int(span.get("depth", 0))
        attrs = span.get("attrs") or {}
        attr_text = ""
        if attrs:
            attr_text = "  [{}]".format(", ".join(
                "{}={}".format(k, v) for k, v in sorted(attrs.items())))
        error = span.get("error")
        lines.append("{}{:<{}} {:>9.3f} ms{}{}".format(
            indent, span.get("name", "?"), max(1, 36 - len(indent)),
            float(span.get("duration_ms", 0.0)), attr_text,
            "  ERROR={}".format(error) if error else ""))
    return "\n".join(lines)


def run_obs_smoke(source: str, cache_dir: str) -> dict:
    """The ``make obs-smoke`` battery: live observability end to end.

    Boots an in-process daemon with an access log and ``slow_ms=0`` (so
    every request logs), fires traced + debug queries over HTTP, then
    checks the whole observability surface: the client-chosen trace id
    comes back in the response, on every collected span, in
    ``/v1/requests`` and in the access-log JSONL (validated line by
    line); ``/v1/metrics`` passes the promtool-style self-lint and
    carries the quantile gauges + SLO counters; and ``repro top --once``
    renders a frame from the live daemon in a subprocess.
    """
    from pathlib import Path

    from repro.obs import promlint
    from repro.obs.reqlog import validate_access_line
    from repro.serve.daemon import Daemon
    from repro.serve.factcache import FactStore
    from repro.serve.session import SessionManager

    access_log = str(Path(cache_dir) / "access.jsonl")
    manager = SessionManager(store=FactStore(Path(cache_dir) / "facts"))
    daemon = Daemon(manager, slo_ms=5000.0, slow_ms=0.0,
                    access_log_path=access_log)
    port = daemon.start_http()
    trace_id = "obs-smoke-trace"
    try:
        client = HttpClient(port)
        debug_resp = client.query({
            "op": "tables", "id": "dbg", "source": source, "name": "smoke",
            "trace_id": trace_id, "debug": True})
        if not debug_resp.get("ok"):
            raise AssertionError("debug query failed: {}".format(debug_resp))
        if debug_resp.get("trace") != trace_id:
            raise AssertionError("response did not echo the trace id: {}"
                                 .format(debug_resp.get("trace")))
        spans = debug_resp.get("spans") or []
        if not spans:
            raise AssertionError("debug response collected no spans")
        off_trace = [s for s in spans if s.get("trace") != trace_id]
        if off_trace:
            raise AssertionError(
                "spans missing the trace id: {}".format(off_trace[:3]))
        # A couple of untraced warm queries so quantiles/journal move.
        warm = client.batch([
            {"op": "ping", "id": "p"},
            {"op": "alias", "id": "a", "source": source, "name": "smoke"},
        ])
        _assert_ok(warm, "obs-warm")

        metrics_body = client.metrics_text()
        promlint.check(metrics_body, source="/v1/metrics")
        for needle in ("repro_serve_request_ms_p50",
                       "repro_serve_request_ms_p95",
                       "repro_serve_request_ms_p99",
                       "repro_serve_slo_ok",
                       "repro_serve_slo_burn_rate_5m",
                       "repro_serve_slo_burn_rate_1h"):
            if needle not in metrics_body:
                raise AssertionError(
                    "/v1/metrics is missing {}".format(needle))

        # The stats op carries the windowed burn snapshot (rates,
        # quantiles, slowest-trace exemplars).
        stats = client.query({"op": "stats", "id": "burn"})
        if not stats.get("ok"):
            raise AssertionError("stats query failed: {}".format(stats))
        slo_burn = stats["result"].get("slo_burn") or {}
        for window in ("5m", "1h"):
            if window not in slo_burn:
                raise AssertionError(
                    "stats slo_burn is missing the {} window: {}".format(
                        window, sorted(slo_burn)))
        if not slo_burn["5m"]["requests"]:
            raise AssertionError(
                "slo_burn 5m window saw no requests: {}".format(slo_burn))

        journal = client.requests_snapshot()
        journal_traces = [r["trace"] for r in journal["requests"]]
        if trace_id not in journal_traces:
            raise AssertionError(
                "/v1/requests does not list trace {} (saw {})".format(
                    trace_id, journal_traces))

        # `repro top --once` renders one frame against the live daemon.
        top = subprocess.run(
            [sys.executable, "-m", "repro.cli", "-q", "top",
             "--port", str(port), "--once"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            timeout=SMOKE_TIMEOUT)
        if top.returncode != 0:
            raise AssertionError("repro top --once failed: {}".format(
                top.stderr.strip()))
        if "req/s" not in top.stdout:
            raise AssertionError(
                "repro top --once rendered no dashboard:\n" + top.stdout)
    finally:
        daemon.stop_http()

    access_lines = Path(access_log).read_text().splitlines()
    if not access_lines:
        raise AssertionError("access log is empty")
    logged_traces = []
    for line in access_lines:
        obj = validate_access_line(line)
        logged_traces.append(obj["trace"])
    if trace_id not in logged_traces:
        raise AssertionError(
            "access log has no line for trace {} (saw {})".format(
                trace_id, logged_traces))

    return {
        "ok": True,
        "trace_id": trace_id,
        "spans_collected": len(spans),
        "metrics_bytes": len(metrics_body),
        "journal_total": journal["total"],
        "access_log_lines": len(access_lines),
        "top_rendered": True,
    }


# ----------------------------------------------------------------------
# The trace-smoke battery: continuous tracing end to end


def run_trace_smoke(source: str, cache_dir: str) -> dict:
    """The ``make trace-smoke`` battery (DESIGN.md §6k).

    One trace, three kinds of process: this client opens a collecting
    trace scope and, under it, (1) fires a batch at a **subprocess**
    stdio daemon started with ``--trace-sample-rate 1 --trace-store``,
    and (2) drives a small sharded corpus run over a 2-worker forked
    pool with the context exported via ``REPRO_TRACEPARENT``.  Then it
    reads the trace store back and asserts the whole point of the
    subsystem: the client, daemon and corpus-worker records merge into
    a **single parent-linked tree**, and the ``repro trace ls / show /
    top`` CLI reconstructs it from disk in yet another process.
    """
    import os
    from pathlib import Path

    from repro.obs import core as obs
    from repro.obs.tracestore import TraceStore, make_record
    from repro.obs.traceview import merge_trace, render_trace
    from repro.qa.corpus import CorpusSpec, generate_corpus, run_corpus

    store_dir = Path(cache_dir) / "traces"
    store = TraceStore(store_dir)
    corpus_dir = Path(cache_dir) / "corpus"
    generate_corpus(CorpusSpec(seed=0, count=8, shard_size=4,
                               max_stmts=10), corpus_dir)
    trace_id = "trace-smoke"
    requests = _smoke_requests(source)

    daemon_argv = [
        sys.executable, "-m", "repro.cli", "serve", "--stdio",
        "--trace-sample-rate", "1", "--trace-store", str(store_dir),
    ]
    saved_env = {key: os.environ.get(key)
                 for key in (tracing.TRACEPARENT_ENV,
                             tracing.TRACE_STORE_ENV)}
    started = time.perf_counter()
    scope = obs.trace_scope(trace_id, collect=True)
    try:
        with scope, obs.span("client.trace_smoke"):
            with obs.span("client.query", op="batch"):
                with StdioClient(
                        argv=daemon_argv,
                        cache_dir=str(Path(cache_dir) / "facts")) as stdio:
                    responses = stdio.batch(requests)
                    rc = stdio.shutdown()
            _assert_ok(responses, "trace-smoke")
            if rc != 0:
                raise AssertionError(
                    "traced daemon did not shut down cleanly (rc={})"
                    .format(rc))
            off_trace = [r for r in responses if r.get("trace") != trace_id]
            if off_trace:
                raise AssertionError(
                    "daemon did not adopt the propagated trace id: {}"
                    .format(off_trace[:2]))
            with obs.span("client.corpus", jobs=2):
                # Export the *current* context (parent span =
                # client.corpus) so the forked pool workers attach
                # their records under it.
                tracing.export_context(tracing.current_context(),
                                       store_dir=str(store_dir))
                report = run_corpus(corpus_dir, jobs=2, engine="bulk")
            if report.failures or report.quarantined:
                raise AssertionError(
                    "traced corpus run failed: {} failures, {} "
                    "quarantined".format(len(report.failures),
                                         len(report.quarantined)))
    finally:
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    total_ms = (time.perf_counter() - started) * 1000.0
    if not store.append(make_record(scope, origin="client",
                                    op="trace-smoke", ms=total_ms,
                                    ok=True)):
        raise AssertionError("client trace record failed to flush")

    # -- the cross-process tree, reconstructed from the store ----------
    records = store.trace(trace_id)
    origins = {r["origin"] for r in records}
    procs = {r["proc"] for r in records}
    for needed in ("client", "daemon", "corpus-worker"):
        if needed not in origins:
            raise AssertionError(
                "store has no {} record for the trace (origins: {})"
                .format(needed, sorted(origins)))
    if len(procs) < 3:
        raise AssertionError(
            "expected >= 3 distinct processes in the trace, got {}"
            .format(sorted(procs)))
    roots = merge_trace(records)
    if len(roots) != 1 or roots[0].detached:
        raise AssertionError(
            "trace did not merge into a single parent-linked tree: "
            "{} roots ({} detached)".format(
                len(roots), sum(r.detached for r in roots)))
    rendered = render_trace(trace_id, records)
    for span_name in ("client.trace_smoke", "serve.request.tables",
                      "corpus.shard.worker"):
        if span_name not in rendered:
            raise AssertionError(
                "rendered tree is missing {!r}:\n{}".format(
                    span_name, rendered))

    # -- the repro trace CLI, in its own process -----------------------
    cli_outputs = {}
    for argv, needle in (
            (["trace", "ls", "--store", str(store_dir)], trace_id),
            (["trace", "show", trace_id, "--store", str(store_dir)],
             "corpus.shard.worker"),
            (["trace", "top", "--by", "phase", "--store", str(store_dir)],
             "serve.request.tables"),
    ):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "-q"] + argv,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            timeout=SMOKE_TIMEOUT)
        label = " ".join(argv[:2])
        if proc.returncode != 0:
            raise AssertionError("repro {} failed: {}".format(
                label, proc.stderr.strip()))
        if needle not in proc.stdout:
            raise AssertionError(
                "repro {} output is missing {!r}:\n{}".format(
                    label, needle, proc.stdout))
        cli_outputs[label] = len(proc.stdout.splitlines())

    return {
        "ok": True,
        "trace_id": trace_id,
        "records": len(records),
        "origins": sorted(origins),
        "processes": len(procs),
        "single_root": True,
        "corpus_shards": len(report.shards),
        "cli_lines": cli_outputs,
    }
